package model

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/entity"
	"repro/internal/events"
	"repro/internal/store"
)

// fixture builds a DB with one organization, institute, users, and a project.
type fixture struct {
	db      *DB
	org     int64
	inst    int64
	alice   int64 // scientist
	eva     int64 // expert
	project int64
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	rg := entity.NewRegistry(store.New(), events.NewBus())
	if err := RegisterSchema(rg); err != nil {
		t.Fatal(err)
	}
	db := NewDB(rg)
	fx := &fixture{db: db}
	err := db.Store().Update(func(tx *store.Tx) error {
		var err error
		fx.org, err = db.CreateOrganization(tx, "setup", Organization{Name: "UZH", Country: "CH"})
		if err != nil {
			return err
		}
		fx.inst, err = db.CreateInstitute(tx, "setup", Institute{Name: "FGCZ", Organization: fx.org})
		if err != nil {
			return err
		}
		fx.alice, err = db.CreateUser(tx, "setup", User{Login: "alice", FullName: "Alice A", Role: RoleScientist, Institute: fx.inst, Active: true})
		if err != nil {
			return err
		}
		fx.eva, err = db.CreateUser(tx, "setup", User{Login: "eva", FullName: "Eva E", Role: RoleExpert, Institute: fx.inst, Active: true})
		if err != nil {
			return err
		}
		fx.project, err = db.CreateProject(tx, "setup", Project{
			Name: "p1000", Coach: fx.eva, Members: []int64{fx.alice},
			Institute: fx.inst, Area: "genomics",
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return fx
}

func (fx *fixture) update(t *testing.T, fn func(tx *store.Tx) error) {
	t.Helper()
	if err := fx.db.Store().Update(fn); err != nil {
		t.Fatal(err)
	}
}

func (fx *fixture) view(t *testing.T, fn func(tx *store.Tx) error) {
	t.Helper()
	if err := fx.db.Store().View(fn); err != nil {
		t.Fatal(err)
	}
}

func TestSchemaRegistersAllKinds(t *testing.T) {
	fx := newFixture(t)
	want := []string{
		KindApplication, KindDataResource, KindExperiment, KindExtract,
		KindInstitute, KindOrganization, KindProject, KindSample,
		KindUser, KindWorkunit,
	}
	kinds := fx.db.Registry().Kinds()
	for _, w := range want {
		found := false
		for _, k := range kinds {
			if k == w {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("kind %q not registered", w)
		}
	}
}

func TestFigure1SchemaShape(t *testing.T) {
	// The core chain of Figure 1: dataresource→extract→sample→project,
	// dataresource→workunit, workunit→project.
	fx := newFixture(t)
	rg := fx.db.Registry()
	cases := []struct{ kind, field, target string }{
		{KindSample, "project", KindProject},
		{KindExtract, "sample", KindSample},
		{KindDataResource, "extract", KindExtract},
		{KindDataResource, "workunit", KindWorkunit},
		{KindWorkunit, "project", KindProject},
		{KindInstitute, "organization", KindOrganization},
		{KindUser, "institute", KindInstitute},
	}
	for _, c := range cases {
		f := rg.Kind(c.kind).Field(c.field)
		if f == nil || f.Type != entity.Ref || f.RefKind != c.target {
			t.Errorf("%s.%s should be Ref(%s), got %+v", c.kind, c.field, c.target, f)
		}
	}
}

func TestSampleExtractLifecycle(t *testing.T) {
	fx := newFixture(t)
	var sid, eid int64
	fx.update(t, func(tx *store.Tx) error {
		var err error
		sid, err = fx.db.CreateSample(tx, "alice", Sample{
			Name: "AT-wt-1", Project: fx.project, Owner: fx.alice,
			Species: "Arabidopsis thaliana", DiseaseState: "Hopeless",
		})
		if err != nil {
			return err
		}
		eid, err = fx.db.CreateExtract(tx, "alice", Extract{
			Name: "AT-wt-1-leaf", Sample: sid, ExtractionMethod: "RNA extraction",
			Concentration: 120.5, VolumeUL: 30,
		})
		return err
	})
	fx.view(t, func(tx *store.Tx) error {
		s, err := fx.db.GetSample(tx, sid)
		if err != nil {
			return err
		}
		if s.Species != "Arabidopsis thaliana" || s.Project != fx.project {
			t.Errorf("sample = %+v", s)
		}
		e, err := fx.db.GetExtract(tx, eid)
		if err != nil {
			return err
		}
		if e.Sample != sid || e.Concentration != 120.5 {
			t.Errorf("extract = %+v", e)
		}
		es, err := fx.db.ExtractsOfSample(tx, sid)
		if err != nil {
			return err
		}
		if len(es) != 1 || es[0].ID != eid {
			t.Errorf("ExtractsOfSample = %+v", es)
		}
		return nil
	})
}

func TestCloneSamplePreservesAnnotations(t *testing.T) {
	fx := newFixture(t)
	var orig, clone int64
	fx.update(t, func(tx *store.Tx) error {
		var err error
		orig, err = fx.db.CreateSample(tx, "alice", Sample{
			Name: "origin", Project: fx.project, Species: "A. thaliana",
			Tissue: "leaf", Treatment: "light",
		})
		if err != nil {
			return err
		}
		clone, err = fx.db.CloneSample(tx, "alice", orig, "copy")
		return err
	})
	fx.view(t, func(tx *store.Tx) error {
		c, err := fx.db.GetSample(tx, clone)
		if err != nil {
			return err
		}
		if c.Name != "copy" || c.Species != "A. thaliana" || c.Tissue != "leaf" || c.Treatment != "light" {
			t.Errorf("clone = %+v", c)
		}
		if c.ID == orig {
			t.Error("clone got original's id")
		}
		return nil
	})
}

func TestBatchCreateSamples(t *testing.T) {
	fx := newFixture(t)
	var ids []int64
	fx.update(t, func(tx *store.Tx) error {
		var err error
		ids, err = fx.db.BatchCreateSamples(tx, "alice", Sample{
			Name: "tpl", Project: fx.project, Species: "A. thaliana",
		}, "batch", 10)
		return err
	})
	if len(ids) != 10 {
		t.Fatalf("got %d ids", len(ids))
	}
	fx.view(t, func(tx *store.Tx) error {
		s, err := fx.db.GetSample(tx, ids[4])
		if err != nil {
			return err
		}
		if s.Name != "batch_5" || s.Species != "A. thaliana" {
			t.Errorf("batch sample = %+v", s)
		}
		return nil
	})
	// Invalid batch size.
	err := fx.db.Store().Update(func(tx *store.Tx) error {
		_, err := fx.db.BatchCreateSamples(tx, "alice", Sample{Name: "x", Project: fx.project}, "b", 0)
		return err
	})
	if err == nil {
		t.Error("batch size 0 accepted")
	}
}

func TestBatchCreateExtracts(t *testing.T) {
	fx := newFixture(t)
	var sid int64
	var ids []int64
	fx.update(t, func(tx *store.Tx) error {
		var err error
		sid, err = fx.db.CreateSample(tx, "alice", Sample{Name: "s", Project: fx.project})
		if err != nil {
			return err
		}
		ids, err = fx.db.BatchCreateExtracts(tx, "alice", Extract{
			Name: "tpl", Sample: sid, ExtractionMethod: "TRIzol",
		}, "ex", 5)
		return err
	})
	if len(ids) != 5 {
		t.Fatalf("got %d extracts", len(ids))
	}
	fx.view(t, func(tx *store.Tx) error {
		es, err := fx.db.ExtractsOfSample(tx, sid)
		if err != nil {
			return err
		}
		if len(es) != 5 || es[0].Name != "ex_1" || es[0].ExtractionMethod != "TRIzol" {
			t.Errorf("extracts = %+v", es)
		}
		return nil
	})
}

func TestProjectScopedQueries(t *testing.T) {
	fx := newFixture(t)
	var p2 int64
	fx.update(t, func(tx *store.Tx) error {
		var err error
		p2, err = fx.db.CreateProject(tx, "setup", Project{Name: "p2000"})
		if err != nil {
			return err
		}
		for i := 0; i < 3; i++ {
			sid, err := fx.db.CreateSample(tx, "alice", Sample{
				Name: fmt.Sprintf("s%d", i), Project: fx.project,
			})
			if err != nil {
				return err
			}
			if _, err := fx.db.CreateExtract(tx, "alice", Extract{
				Name: fmt.Sprintf("e%d", i), Sample: sid,
			}); err != nil {
				return err
			}
		}
		_, err = fx.db.CreateSample(tx, "alice", Sample{Name: "other", Project: p2})
		return err
	})
	fx.view(t, func(tx *store.Tx) error {
		ss, err := fx.db.SamplesOfProject(tx, fx.project)
		if err != nil {
			return err
		}
		if len(ss) != 3 {
			t.Errorf("SamplesOfProject = %d, want 3", len(ss))
		}
		es, err := fx.db.ExtractsOfProject(tx, fx.project)
		if err != nil {
			return err
		}
		if len(es) != 3 {
			t.Errorf("ExtractsOfProject = %d, want 3", len(es))
		}
		return nil
	})
}

func TestWorkunitLifecycle(t *testing.T) {
	fx := newFixture(t)
	var wid int64
	fx.update(t, func(tx *store.Tx) error {
		var err error
		wid, err = fx.db.CreateWorkunit(tx, "alice", Workunit{
			Name: "import-1", Project: fx.project, Owner: fx.alice,
			Parameters: map[string]string{"instrument": "GeneChip"},
		})
		return err
	})
	fx.view(t, func(tx *store.Tx) error {
		w, err := fx.db.GetWorkunit(tx, wid)
		if err != nil {
			return err
		}
		if w.State != WorkunitPending {
			t.Errorf("default state = %q", w.State)
		}
		if w.Parameters["instrument"] != "GeneChip" {
			t.Errorf("parameters = %v", w.Parameters)
		}
		return nil
	})
	fx.update(t, func(tx *store.Tx) error {
		return fx.db.SetWorkunitState(tx, "alice", wid, WorkunitReady)
	})
	fx.view(t, func(tx *store.Tx) error {
		w, _ := fx.db.GetWorkunit(tx, wid)
		if w.State != WorkunitReady {
			t.Errorf("state = %q", w.State)
		}
		return nil
	})
	err := fx.db.Store().Update(func(tx *store.Tx) error {
		return fx.db.SetWorkunitState(tx, "alice", wid, "bogus")
	})
	if err == nil {
		t.Error("invalid state accepted")
	}
}

func TestDataResourceAndAssignExtract(t *testing.T) {
	fx := newFixture(t)
	var wid, sid, eid, rid int64
	fx.update(t, func(tx *store.Tx) error {
		var err error
		wid, err = fx.db.CreateWorkunit(tx, "alice", Workunit{Name: "wu", Project: fx.project})
		if err != nil {
			return err
		}
		sid, err = fx.db.CreateSample(tx, "alice", Sample{Name: "s", Project: fx.project})
		if err != nil {
			return err
		}
		eid, err = fx.db.CreateExtract(tx, "alice", Extract{Name: "e", Sample: sid})
		if err != nil {
			return err
		}
		rid, err = fx.db.CreateDataResource(tx, "alice", DataResource{
			Name: "chip01.cel", Workunit: wid, Format: "cel", SizeBytes: 1024,
		})
		return err
	})
	fx.update(t, func(tx *store.Tx) error {
		return fx.db.AssignExtract(tx, "alice", rid, eid)
	})
	fx.view(t, func(tx *store.Tx) error {
		d, err := fx.db.GetDataResource(tx, rid)
		if err != nil {
			return err
		}
		if d.Extract != eid || d.Format != "cel" {
			t.Errorf("resource = %+v", d)
		}
		rs, err := fx.db.ResourcesOfWorkunit(tx, wid)
		if err != nil {
			return err
		}
		if len(rs) != 1 || rs[0].ID != rid {
			t.Errorf("ResourcesOfWorkunit = %+v", rs)
		}
		return nil
	})
}

func TestApplicationAndExperiment(t *testing.T) {
	fx := newFixture(t)
	var aid, xid int64
	fx.update(t, func(tx *store.Tx) error {
		var err error
		aid, err = fx.db.CreateApplication(tx, "admin", Application{
			Name: "two group analysis", Connector: "rserve",
			Program: "twogroup.R", InputSpec: []string{"resources", "samples"},
			ParamSpec: []string{"reference_group"}, Active: true,
		})
		if err != nil {
			return err
		}
		xid, err = fx.db.CreateExperiment(tx, "alice", Experiment{
			Name: "AT light response", Project: fx.project, Owner: fx.alice,
			Attributes: map[string]string{"species": "A. thaliana", "treatment": "light"},
		})
		return err
	})
	fx.view(t, func(tx *store.Tx) error {
		a, err := fx.db.ApplicationByName(tx, "two group analysis")
		if err != nil {
			return err
		}
		if a.ID != aid || a.Connector != "rserve" || len(a.InputSpec) != 2 {
			t.Errorf("application = %+v", a)
		}
		x, err := fx.db.GetExperiment(tx, xid)
		if err != nil {
			return err
		}
		if x.Attributes["treatment"] != "light" {
			t.Errorf("experiment = %+v", x)
		}
		return nil
	})
}

func TestUserQueries(t *testing.T) {
	fx := newFixture(t)
	fx.view(t, func(tx *store.Tx) error {
		u, err := fx.db.UserByLogin(tx, "alice")
		if err != nil {
			return err
		}
		if u.ID != fx.alice || u.Role != RoleScientist {
			t.Errorf("UserByLogin = %+v", u)
		}
		experts, err := fx.db.UsersByRole(tx, RoleExpert)
		if err != nil {
			return err
		}
		if len(experts) != 1 || experts[0].ID != fx.eva {
			t.Errorf("UsersByRole = %+v", experts)
		}
		if _, err := fx.db.UserByLogin(tx, "nobody"); !errors.Is(err, store.ErrNotFound) {
			t.Errorf("missing login: %v", err)
		}
		return nil
	})
}

func TestDefaultUserRole(t *testing.T) {
	fx := newFixture(t)
	var id int64
	fx.update(t, func(tx *store.Tx) error {
		var err error
		id, err = fx.db.CreateUser(tx, "setup", User{Login: "norole", Active: true})
		return err
	})
	fx.view(t, func(tx *store.Tx) error {
		u, _ := fx.db.GetUser(tx, id)
		if u.Role != RoleScientist {
			t.Errorf("default role = %q", u.Role)
		}
		return nil
	})
}

func TestProjectMembers(t *testing.T) {
	fx := newFixture(t)
	fx.view(t, func(tx *store.Tx) error {
		ms, err := fx.db.ProjectMembers(tx, fx.project)
		if err != nil {
			return err
		}
		// alice (member) + eva (coach)
		if len(ms) != 2 {
			t.Errorf("members = %v", ms)
		}
		return nil
	})
}

func TestCollectStats(t *testing.T) {
	fx := newFixture(t)
	fx.update(t, func(tx *store.Tx) error {
		sid, err := fx.db.CreateSample(tx, "alice", Sample{Name: "s", Project: fx.project})
		if err != nil {
			return err
		}
		if _, err := fx.db.CreateExtract(tx, "alice", Extract{Name: "e", Sample: sid}); err != nil {
			return err
		}
		wid, err := fx.db.CreateWorkunit(tx, "alice", Workunit{Name: "w", Project: fx.project})
		if err != nil {
			return err
		}
		_, err = fx.db.CreateDataResource(tx, "alice", DataResource{Name: "d", Workunit: wid})
		return err
	})
	got := fx.db.CollectStats()
	want := Stats{Users: 2, Projects: 1, Institutes: 1, Organizations: 1,
		Samples: 1, Extracts: 1, DataResources: 1, Workunits: 1}
	if got != want {
		t.Errorf("stats = %+v, want %+v", got, want)
	}
}

func TestKVRoundTrip(t *testing.T) {
	m := map[string]string{"b": "2", "a": "1", "with=eq": "v=w"}
	list := FormatKV(m)
	if len(list) != 3 || list[0] != "a=1" {
		t.Errorf("FormatKV = %v", list)
	}
	back := ParseKV(list)
	if back["a"] != "1" || back["b"] != "2" {
		t.Errorf("ParseKV = %v", back)
	}
	// Keys containing '=' split at the first '='.
	if back["with"] != "eq=v=w" {
		t.Errorf("ParseKV eq handling = %v", back)
	}
	if ParseKV(nil) != nil {
		t.Error("ParseKV(nil) != nil")
	}
	if FormatKV(nil) != nil {
		t.Error("FormatKV(nil) != nil")
	}
	if got := ParseKV([]string{"malformed"}); len(got) != 0 {
		t.Errorf("malformed entry parsed: %v", got)
	}
}

func TestVocabularyNamesAndAnnotatedFields(t *testing.T) {
	fx := newFixture(t)
	names := VocabularyNames()
	if len(names) != 8 {
		t.Errorf("VocabularyNames = %v", names)
	}
	af := AnnotatedFields(fx.db.Registry())
	if len(af[KindSample]) != 5 {
		t.Errorf("sample annotated fields = %+v", af[KindSample])
	}
	if len(af[KindExtract]) != 2 {
		t.Errorf("extract annotated fields = %+v", af[KindExtract])
	}
}
