package model

import (
	"fmt"
	"slices"
	"sort"
	"strings"
	"time"

	"repro/internal/store"
)

// User is a registered B-Fabric user.
type User struct {
	ID        int64
	Login     string
	FullName  string
	Email     string
	Institute int64
	Role      string
	Active    bool
	Created   time.Time
}

// Roles recognised by the system.
const (
	RoleScientist = "scientist"
	RoleExpert    = "expert" // FGCZ employee who reviews annotations
	RoleAdmin     = "admin"
)

// Organization is a research organization (e.g. a university).
type Organization struct {
	ID      int64
	Name    string
	Country string
}

// Institute is a department within an organization.
type Institute struct {
	ID           int64
	Name         string
	Organization int64
}

// Project groups samples, workunits and experiments, and scopes
// value selection (drop-down menus) and access control.
type Project struct {
	ID          int64
	Name        string
	Description string
	Coach       int64
	Members     []int64
	Institute   int64
	Area        string
}

// Sample describes the biological source at the general level.
type Sample struct {
	ID           int64
	Name         string
	Project      int64
	Owner        int64
	Species      string
	Tissue       string
	DiseaseState string
	CellType     string
	Treatment    string
	Description  string
	Created      time.Time
}

// Extract is an extraction of a sample actually used in an experiment or
// measurement. Several extracts may derive from one sample.
type Extract struct {
	ID               int64
	Name             string
	Sample           int64
	ExtractionMethod string
	Label            string
	Concentration    float64
	VolumeUL         float64
	Description      string
}

// DataResource abstracts a file or a link to a file.
type DataResource struct {
	ID        int64
	Name      string
	Workunit  int64
	Extract   int64
	URI       string
	SizeBytes int64
	Checksum  string
	Format    string
	IsInput   bool
	Linked    bool
	Content   string
}

// Workunit is a container referencing data resources that logically form a
// unit: the result of an experiment, measurement, analysis or search.
type Workunit struct {
	ID          int64
	Name        string
	Project     int64
	Owner       int64
	Application int64
	Description string
	State       string
	Parameters  map[string]string
}

// Application is an external application registered with the system.
type Application struct {
	ID          int64
	Name        string
	Description string
	Connector   string
	Program     string
	InputSpec   []string
	ParamSpec   []string
	Active      bool
}

// Experiment is a definition of an application run: a selection of data
// resources, samples, extracts, and free attributes used as input.
type Experiment struct {
	ID          int64
	Name        string
	Project     int64
	Owner       int64
	Resources   []int64
	Samples     []int64
	Extracts    []int64
	Attributes  map[string]string
	Description string
}

// --- record conversions -------------------------------------------------
//
// The conversions accept shared record references from the store's zero-copy
// read path. Scalar fields are value types; slice-valued fields are cloned so
// the returned structs are fully owned by the caller and can be mutated
// without touching committed state.

func userFromRecord(r store.Record) User {
	return User{
		ID: r.ID(), Login: r.String("login"), FullName: r.String("fullname"),
		Email: r.String("email"), Institute: r.Int("institute"),
		Role: r.String("role"), Active: r.Bool("active"),
		Created: r.Time("created"),
	}
}

func organizationFromRecord(r store.Record) Organization {
	return Organization{ID: r.ID(), Name: r.String("name"), Country: r.String("country")}
}

func instituteFromRecord(r store.Record) Institute {
	return Institute{ID: r.ID(), Name: r.String("name"), Organization: r.Int("organization")}
}

func projectFromRecord(r store.Record) Project {
	return Project{
		ID: r.ID(), Name: r.String("name"), Description: r.String("description"),
		Coach: r.Int("coach"), Members: slices.Clone(r.IDs("members")),
		Institute: r.Int("institute"), Area: r.String("area"),
	}
}

func sampleFromRecord(r store.Record) Sample {
	return Sample{
		ID: r.ID(), Name: r.String("name"), Project: r.Int("project"),
		Owner: r.Int("owner"), Species: r.String("species"),
		Tissue: r.String("tissue"), DiseaseState: r.String("disease_state"),
		CellType: r.String("cell_type"), Treatment: r.String("treatment"),
		Description: r.String("description"), Created: r.Time("created"),
	}
}

func (s Sample) values() map[string]any {
	return map[string]any{
		"name": s.Name, "project": s.Project, "owner": s.Owner,
		"species": s.Species, "tissue": s.Tissue,
		"disease_state": s.DiseaseState, "cell_type": s.CellType,
		"treatment": s.Treatment, "description": s.Description,
	}
}

func extractFromRecord(r store.Record) Extract {
	return Extract{
		ID: r.ID(), Name: r.String("name"), Sample: r.Int("sample"),
		ExtractionMethod: r.String("extraction_method"), Label: r.String("label"),
		Concentration: r.Float("concentration"), VolumeUL: r.Float("volume_ul"),
		Description: r.String("description"),
	}
}

func (e Extract) values() map[string]any {
	return map[string]any{
		"name": e.Name, "sample": e.Sample,
		"extraction_method": e.ExtractionMethod, "label": e.Label,
		"concentration": e.Concentration, "volume_ul": e.VolumeUL,
		"description": e.Description,
	}
}

func dataResourceFromRecord(r store.Record) DataResource {
	return DataResource{
		ID: r.ID(), Name: r.String("name"), Workunit: r.Int("workunit"),
		Extract: r.Int("extract"), URI: r.String("uri"),
		SizeBytes: r.Int("size_bytes"), Checksum: r.String("checksum"),
		Format: r.String("format"), IsInput: r.Bool("is_input"),
		Linked: r.Bool("linked"), Content: r.String("content"),
	}
}

func workunitFromRecord(r store.Record) Workunit {
	return Workunit{
		ID: r.ID(), Name: r.String("name"), Project: r.Int("project"),
		Owner: r.Int("owner"), Application: r.Int("application"),
		Description: r.String("description"), State: r.String("state"),
		Parameters: ParseKV(r.Strings("parameters")),
	}
}

func applicationFromRecord(r store.Record) Application {
	return Application{
		ID: r.ID(), Name: r.String("name"), Description: r.String("description"),
		Connector: r.String("connector"), Program: r.String("program"),
		InputSpec: slices.Clone(r.Strings("input_spec")), ParamSpec: slices.Clone(r.Strings("param_spec")),
		Active: r.Bool("active"),
	}
}

func experimentFromRecord(r store.Record) Experiment {
	return Experiment{
		ID: r.ID(), Name: r.String("name"), Project: r.Int("project"),
		Owner: r.Int("owner"), Resources: slices.Clone(r.IDs("resources")),
		Samples: slices.Clone(r.IDs("samples")), Extracts: slices.Clone(r.IDs("extracts")),
		Attributes:  ParseKV(r.Strings("attributes")),
		Description: r.String("description"),
	}
}

// --- key=value helpers ----------------------------------------------------

// FormatKV converts a map into a deterministic "key=value" string list.
func FormatKV(m map[string]string) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = fmt.Sprintf("%s=%s", k, m[k])
	}
	return out
}

// ParseKV converts a "key=value" string list back into a map. Entries
// without '=' are ignored.
func ParseKV(list []string) map[string]string {
	if len(list) == 0 {
		return nil
	}
	m := make(map[string]string, len(list))
	for _, kv := range list {
		if i := strings.IndexByte(kv, '='); i >= 0 {
			m[kv[:i]] = kv[i+1:]
		}
	}
	return m
}
