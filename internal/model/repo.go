package model

import (
	"context"
	"fmt"
	"slices"

	"repro/internal/entity"
	"repro/internal/store"
)

// DB is the typed repository over the entity registry. All methods take the
// caller's transaction so that service-level operations (imports, merges,
// experiment runs) stay atomic.
//
// Listing methods are expressed as declarative store queries: the store's
// planner picks the access path (index postings, unique lookup, ordered
// scan) and the typed conversion streams over the zero-copy iterator.
type DB struct {
	rg *entity.Registry
}

// listQuery streams a query's rows through a record converter.
func listQuery[T any](tx *store.Tx, q store.Query, conv func(store.Record) T) ([]T, error) {
	rows, err := tx.Query(q)
	if err != nil {
		return nil, err
	}
	out := make([]T, 0, 8)
	for rows.Next() {
		out = append(out, conv(rows.Record()))
	}
	return out, rows.Err()
}

// NewDB wraps an entity registry whose schema has been registered with
// RegisterSchema.
func NewDB(rg *entity.Registry) *DB { return &DB{rg: rg} }

// Registry exposes the underlying entity registry.
func (db *DB) Registry() *entity.Registry { return db.rg }

// Store exposes the underlying record store.
func (db *DB) Store() *store.Store { return db.rg.Store() }

// --- organizations / institutes / users ---------------------------------

// CreateOrganization registers an organization.
func (db *DB) CreateOrganization(tx *store.Tx, actor string, o Organization) (int64, error) {
	return db.rg.Create(tx, KindOrganization, actor, map[string]any{
		"name": o.Name, "country": o.Country,
	})
}

// GetOrganization fetches an organization by id.
func (db *DB) GetOrganization(tx *store.Tx, id int64) (Organization, error) {
	r, err := db.rg.GetRef(tx, KindOrganization, id)
	if err != nil {
		return Organization{}, err
	}
	return organizationFromRecord(r), nil
}

// CreateInstitute registers an institute within an organization.
func (db *DB) CreateInstitute(tx *store.Tx, actor string, in Institute) (int64, error) {
	return db.rg.Create(tx, KindInstitute, actor, map[string]any{
		"name": in.Name, "organization": in.Organization,
	})
}

// GetInstitute fetches an institute by id.
func (db *DB) GetInstitute(tx *store.Tx, id int64) (Institute, error) {
	r, err := db.rg.GetRef(tx, KindInstitute, id)
	if err != nil {
		return Institute{}, err
	}
	return instituteFromRecord(r), nil
}

// CreateUser registers a user.
func (db *DB) CreateUser(tx *store.Tx, actor string, u User) (int64, error) {
	role := u.Role
	if role == "" {
		role = RoleScientist
	}
	return db.rg.Create(tx, KindUser, actor, map[string]any{
		"login": u.Login, "fullname": u.FullName, "email": u.Email,
		"institute": u.Institute, "role": role, "active": u.Active,
	})
}

// GetUser fetches a user by id.
func (db *DB) GetUser(tx *store.Tx, id int64) (User, error) {
	r, err := db.rg.GetRef(tx, KindUser, id)
	if err != nil {
		return User{}, err
	}
	return userFromRecord(r), nil
}

// UserByLogin fetches a user by login name.
func (db *DB) UserByLogin(tx *store.Tx, login string) (User, error) {
	r, err := tx.FirstRef(KindUser, "login", login)
	if err != nil {
		return User{}, err
	}
	return userFromRecord(r), nil
}

// UsersByRole returns all users holding the given role, in id order.
func (db *DB) UsersByRole(tx *store.Tx, role string) ([]User, error) {
	return listQuery(tx, store.Query{
		Table: KindUser,
		Where: []store.Pred{store.Eq("role", role)},
	}, userFromRecord)
}

// ActiveUsersByRole returns the active users holding the given role, in id
// order — the population a task list fans out to. The role index drives;
// the active flag is a pushed-down residual.
func (db *DB) ActiveUsersByRole(tx *store.Tx, role string) ([]User, error) {
	return listQuery(tx, store.Query{
		Table: KindUser,
		Where: []store.Pred{store.Eq("role", role), store.Eq("active", true)},
	}, userFromRecord)
}

// --- projects ------------------------------------------------------------

// CreateProject registers a project.
func (db *DB) CreateProject(tx *store.Tx, actor string, p Project) (int64, error) {
	return db.rg.Create(tx, KindProject, actor, map[string]any{
		"name": p.Name, "description": p.Description, "coach": p.Coach,
		"members": p.Members, "institute": p.Institute, "area": p.Area,
	})
}

// GetProject fetches a project by id.
func (db *DB) GetProject(tx *store.Tx, id int64) (Project, error) {
	r, err := db.rg.GetRef(tx, KindProject, id)
	if err != nil {
		return Project{}, err
	}
	return projectFromRecord(r), nil
}

// ProjectMembers returns the member user ids of a project, including the
// coach.
func (db *DB) ProjectMembers(tx *store.Tx, id int64) ([]int64, error) {
	p, err := db.GetProject(tx, id)
	if err != nil {
		return nil, err
	}
	out := append([]int64{}, p.Members...)
	if p.Coach != 0 && !slices.Contains(out, p.Coach) {
		out = append(out, p.Coach)
	}
	return out, nil
}

// --- samples ---------------------------------------------------------------

// CreateSample registers a sample (Figure 2).
func (db *DB) CreateSample(tx *store.Tx, actor string, s Sample) (int64, error) {
	return db.rg.Create(tx, KindSample, actor, s.values())
}

// GetSample fetches a sample by id.
func (db *DB) GetSample(tx *store.Tx, id int64) (Sample, error) {
	r, err := db.rg.GetRef(tx, KindSample, id)
	if err != nil {
		return Sample{}, err
	}
	return sampleFromRecord(r), nil
}

// UpdateSample applies the given field changes to a sample.
func (db *DB) UpdateSample(tx *store.Tx, actor string, id int64, changes map[string]any) error {
	return db.rg.Update(tx, KindSample, id, actor, changes)
}

// UpdateSampleCtx applies sample changes in an optimistic transaction of
// its own, retrying conflicts with store.WithRetry — the portal's entry
// point, where two annotators editing the same sample should race by
// first-committer-wins, not queue on the writer mutex.
func (db *DB) UpdateSampleCtx(ctx context.Context, actor string, id int64, changes map[string]any) error {
	return store.WithRetry(ctx, db.Store(), func(tx *store.Tx) error {
		return db.UpdateSample(tx, actor, id, changes)
	})
}

// CloneSample registers a copy of the sample with a new name, preserving
// all annotations — the cloning support of Figure 2's registration flow.
func (db *DB) CloneSample(tx *store.Tx, actor string, id int64, newName string) (int64, error) {
	s, err := db.GetSample(tx, id)
	if err != nil {
		return 0, err
	}
	s.Name = newName
	return db.CreateSample(tx, actor, s)
}

// BatchCreateSamples registers n samples named "<prefix>_1".."<prefix>_n"
// sharing the template's annotations — batch registration per the paper.
// The whole batch is one entity-layer call: one coalesced sample.created
// event instead of n, so audit and search fan in once per batch.
func (db *DB) BatchCreateSamples(tx *store.Tx, actor string, template Sample, prefix string, n int) ([]int64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("model: batch size %d", n)
	}
	values := make([]map[string]any, 0, n)
	for i := 1; i <= n; i++ {
		s := template
		s.Name = fmt.Sprintf("%s_%d", prefix, i)
		values = append(values, s.values())
	}
	return db.rg.CreateBatch(tx, KindSample, actor, values)
}

// SamplesOfProject returns every sample of the project in id order. This is
// the query that scopes drop-down menus to the user's project.
func (db *DB) SamplesOfProject(tx *store.Tx, project int64) ([]Sample, error) {
	return listQuery(tx, store.Query{
		Table: KindSample,
		Where: []store.Pred{store.Eq("project", project)},
	}, sampleFromRecord)
}

// SamplesOfProjectBySpecies returns the project's samples annotated with
// the given species, in id order — the project-scoped drop-down narrowed
// by an annotation. The planner drives from whichever index (project or
// species) is more selective and filters the other predicate per row.
func (db *DB) SamplesOfProjectBySpecies(tx *store.Tx, project int64, species string) ([]Sample, error) {
	return listQuery(tx, store.Query{
		Table: KindSample,
		Where: []store.Pred{store.Eq("project", project), store.Eq("species", species)},
	}, sampleFromRecord)
}

// --- extracts ---------------------------------------------------------------

// CreateExtract registers an extract (Figure 3).
func (db *DB) CreateExtract(tx *store.Tx, actor string, e Extract) (int64, error) {
	return db.rg.Create(tx, KindExtract, actor, e.values())
}

// GetExtract fetches an extract by id.
func (db *DB) GetExtract(tx *store.Tx, id int64) (Extract, error) {
	r, err := db.rg.GetRef(tx, KindExtract, id)
	if err != nil {
		return Extract{}, err
	}
	return extractFromRecord(r), nil
}

// CloneExtract registers a copy of an extract under a new name.
func (db *DB) CloneExtract(tx *store.Tx, actor string, id int64, newName string) (int64, error) {
	e, err := db.GetExtract(tx, id)
	if err != nil {
		return 0, err
	}
	e.Name = newName
	return db.CreateExtract(tx, actor, e)
}

// BatchCreateExtracts registers n extracts from a template as one
// entity-layer batch: one coalesced extract.created event instead of n.
func (db *DB) BatchCreateExtracts(tx *store.Tx, actor string, template Extract, prefix string, n int) ([]int64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("model: batch size %d", n)
	}
	values := make([]map[string]any, 0, n)
	for i := 1; i <= n; i++ {
		e := template
		e.Name = fmt.Sprintf("%s_%d", prefix, i)
		values = append(values, e.values())
	}
	return db.rg.CreateBatch(tx, KindExtract, actor, values)
}

// ExtractsOfSample returns the extracts derived from a sample.
func (db *DB) ExtractsOfSample(tx *store.Tx, sample int64) ([]Extract, error) {
	return listQuery(tx, store.Query{
		Table: KindExtract,
		Where: []store.Pred{store.Eq("sample", sample)},
	}, extractFromRecord)
}

// ExtractsOfProject returns every extract whose sample belongs to the
// project, in extract id order — the scoped drop-down for the
// assign-extracts step. The two-step shape (project's sample ids, then
// one In query over the extract sample index) replaces the former
// per-sample query loop: one planned union instead of N point listings,
// and the result comes back in a single global id order.
func (db *DB) ExtractsOfProject(tx *store.Tx, project int64) ([]Extract, error) {
	sampleRows, err := tx.Query(store.Query{
		Table: KindSample,
		Where: []store.Pred{store.Eq("project", project)},
	})
	if err != nil {
		return nil, err
	}
	var sampleIDs []int64
	for sampleRows.Next() {
		sampleIDs = append(sampleIDs, sampleRows.ID())
	}
	if err := sampleRows.Err(); err != nil {
		return nil, err
	}
	return listQuery(tx, store.Query{
		Table: KindExtract,
		Where: []store.Pred{store.InIDs("sample", sampleIDs)},
	}, extractFromRecord)
}

// --- workunits & data resources ---------------------------------------------

// CreateWorkunit registers a workunit container.
func (db *DB) CreateWorkunit(tx *store.Tx, actor string, w Workunit) (int64, error) {
	state := w.State
	if state == "" {
		state = WorkunitPending
	}
	return db.rg.Create(tx, KindWorkunit, actor, map[string]any{
		"name": w.Name, "project": w.Project, "owner": w.Owner,
		"application": w.Application, "description": w.Description,
		"state": state, "parameters": FormatKV(w.Parameters),
	})
}

// GetWorkunit fetches a workunit by id.
func (db *DB) GetWorkunit(tx *store.Tx, id int64) (Workunit, error) {
	r, err := db.rg.GetRef(tx, KindWorkunit, id)
	if err != nil {
		return Workunit{}, err
	}
	return workunitFromRecord(r), nil
}

// SetWorkunitState transitions a workunit's lifecycle state.
func (db *DB) SetWorkunitState(tx *store.Tx, actor string, id int64, state string) error {
	switch state {
	case WorkunitPending, WorkunitProcessing, WorkunitReady, WorkunitFailed:
	default:
		return fmt.Errorf("model: invalid workunit state %q", state)
	}
	return db.rg.Update(tx, KindWorkunit, id, actor, map[string]any{"state": state})
}

// SetWorkunitStateCtx transitions a workunit's state in an optimistic
// transaction of its own, retrying conflicts with store.WithRetry. State
// transitions are the most contended workunit write — the executor marks
// ready while operators annotate — so they use first-committer-wins
// rather than the serializing Update path.
func (db *DB) SetWorkunitStateCtx(ctx context.Context, actor string, id int64, state string) error {
	return store.WithRetry(ctx, db.Store(), func(tx *store.Tx) error {
		return db.SetWorkunitState(tx, actor, id, state)
	})
}

// WorkunitsOfProject returns the project's workunits in id order,
// optionally narrowed to one lifecycle state ("" = all states). The
// planner drives from the more selective of the project and state
// indexes.
func (db *DB) WorkunitsOfProject(tx *store.Tx, project int64, state string) ([]Workunit, error) {
	where := []store.Pred{store.Eq("project", project)}
	if state != "" {
		where = append(where, store.Eq("state", state))
	}
	return listQuery(tx, store.Query{Table: KindWorkunit, Where: where}, workunitFromRecord)
}

func dataResourceValues(d DataResource) map[string]any {
	return map[string]any{
		"name": d.Name, "workunit": d.Workunit, "extract": d.Extract,
		"uri": d.URI, "size_bytes": d.SizeBytes, "checksum": d.Checksum,
		"format": d.Format, "is_input": d.IsInput, "linked": d.Linked,
		"content": d.Content,
	}
}

// CreateDataResource registers a data resource inside a workunit.
func (db *DB) CreateDataResource(tx *store.Tx, actor string, d DataResource) (int64, error) {
	return db.rg.Create(tx, KindDataResource, actor, dataResourceValues(d))
}

// BatchCreateDataResources registers the given data resources as one
// entity-layer batch — the bulk-import shape: one coalesced
// dataresource.created event however many files arrive, so audit and the
// search indexer fan in once per import instead of once per file.
func (db *DB) BatchCreateDataResources(tx *store.Tx, actor string, ds []DataResource) ([]int64, error) {
	values := make([]map[string]any, len(ds))
	for i, d := range ds {
		values[i] = dataResourceValues(d)
	}
	return db.rg.CreateBatch(tx, KindDataResource, actor, values)
}

// GetDataResource fetches a data resource by id.
func (db *DB) GetDataResource(tx *store.Tx, id int64) (DataResource, error) {
	r, err := db.rg.GetRef(tx, KindDataResource, id)
	if err != nil {
		return DataResource{}, err
	}
	return dataResourceFromRecord(r), nil
}

// AssignExtract connects a data resource to the extract that was the
// biological input of the measurement producing it (Figure 11).
func (db *DB) AssignExtract(tx *store.Tx, actor string, resource, extract int64) error {
	return db.rg.Update(tx, KindDataResource, resource, actor, map[string]any{"extract": extract})
}

// ResourcesOfWorkunit returns the data resources contained in a workunit.
func (db *DB) ResourcesOfWorkunit(tx *store.Tx, workunit int64) ([]DataResource, error) {
	return listQuery(tx, store.Query{
		Table: KindDataResource,
		Where: []store.Pred{store.Eq("workunit", workunit)},
	}, dataResourceFromRecord)
}

// ResourcesOfWorkunitByFormat returns the workunit's data resources in
// the given file format, in id order — the listing behind format-scoped
// result downloads.
func (db *DB) ResourcesOfWorkunitByFormat(tx *store.Tx, workunit int64, format string) ([]DataResource, error) {
	return listQuery(tx, store.Query{
		Table: KindDataResource,
		Where: []store.Pred{store.Eq("workunit", workunit), store.Eq("format", format)},
	}, dataResourceFromRecord)
}

// --- applications & experiments ----------------------------------------------

// CreateApplication registers an application (Figure 12).
func (db *DB) CreateApplication(tx *store.Tx, actor string, a Application) (int64, error) {
	return db.rg.Create(tx, KindApplication, actor, map[string]any{
		"name": a.Name, "description": a.Description,
		"connector": a.Connector, "program": a.Program,
		"input_spec": a.InputSpec, "param_spec": a.ParamSpec,
		"active": a.Active,
	})
}

// GetApplication fetches an application by id.
func (db *DB) GetApplication(tx *store.Tx, id int64) (Application, error) {
	r, err := db.rg.GetRef(tx, KindApplication, id)
	if err != nil {
		return Application{}, err
	}
	return applicationFromRecord(r), nil
}

// ApplicationByName fetches an application by its unique name.
func (db *DB) ApplicationByName(tx *store.Tx, name string) (Application, error) {
	r, err := tx.FirstRef(KindApplication, "name", name)
	if err != nil {
		return Application{}, err
	}
	return applicationFromRecord(r), nil
}

// CreateExperiment registers an experiment definition (Figure 13).
func (db *DB) CreateExperiment(tx *store.Tx, actor string, e Experiment) (int64, error) {
	return db.rg.Create(tx, KindExperiment, actor, map[string]any{
		"name": e.Name, "project": e.Project, "owner": e.Owner,
		"resources": e.Resources, "samples": e.Samples, "extracts": e.Extracts,
		"attributes": FormatKV(e.Attributes), "description": e.Description,
	})
}

// GetExperiment fetches an experiment definition by id.
func (db *DB) GetExperiment(tx *store.Tx, id int64) (Experiment, error) {
	r, err := db.rg.GetRef(tx, KindExperiment, id)
	if err != nil {
		return Experiment{}, err
	}
	return experimentFromRecord(r), nil
}

// --- counting (deployment statistics table) ----------------------------------

// Stats mirrors the deployment statistics table of the paper.
type Stats struct {
	Users         int
	Projects      int
	Institutes    int
	Organizations int
	Samples       int
	Extracts      int
	DataResources int
	Workunits     int
}

// CollectStats counts the main entity populations. All counts come from
// one pinned store version: a commit landing mid-collection cannot skew
// the table against itself (eight separate Store.Count calls used to read
// the live head and could each see a different state).
func (db *DB) CollectStats() Stats {
	s := db.Store()
	var st Stats
	if err := s.View(func(tx *store.Tx) error {
		st = db.CollectStatsTx(tx)
		return nil
	}); err != nil {
		// A closed store refuses transactions but its final version is
		// still readable; report the real populations rather than zeros.
		st = Stats{
			Users:         s.Count(KindUser),
			Projects:      s.Count(KindProject),
			Institutes:    s.Count(KindInstitute),
			Organizations: s.Count(KindOrganization),
			Samples:       s.Count(KindSample),
			Extracts:      s.Count(KindExtract),
			DataResources: s.Count(KindDataResource),
			Workunits:     s.Count(KindWorkunit),
		}
	}
	return st
}

// CollectStatsTx counts the main entity populations against the caller's
// pinned transaction, letting callers tie the table to a snapshot they
// already hold (the portal's conditional /api/stats and the dashboard
// do). Every count reads the version's maintained live counter — the
// aggregate engine's count(maintained) strategy — so the whole table
// costs O(1) per kind regardless of population size.
func (db *DB) CollectStatsTx(tx *store.Tx) Stats {
	return Stats{
		Users:         tx.Count(KindUser),
		Projects:      tx.Count(KindProject),
		Institutes:    tx.Count(KindInstitute),
		Organizations: tx.Count(KindOrganization),
		Samples:       tx.Count(KindSample),
		Extracts:      tx.Count(KindExtract),
		DataResources: tx.Count(KindDataResource),
		Workunits:     tx.Count(KindWorkunit),
	}
}

// ProjectStats summarizes one project's holdings: live counts of its
// samples, extracts, workunits and data resources, plus the workunit
// state histogram. Sample and workunit counts come straight from index
// postings lengths (count(postings)); extracts and resources hang one
// reference away, so their counts sum the postings of the resolved
// foreign-key batch — no row of any of the four tables is materialized.
type ProjectStats struct {
	Project          int64          `json:"project"`
	Samples          int            `json:"samples"`
	Extracts         int            `json:"extracts"`
	Workunits        int            `json:"workunits"`
	DataResources    int            `json:"dataresources"`
	WorkunitsByState map[string]int `json:"workunits_by_state"`
}

// ProjectStats collects the per-project reporting counts the portal's
// project pages and the curation progress views are built from.
func (db *DB) ProjectStats(tx *store.Tx, project int64) (ProjectStats, error) {
	ps := ProjectStats{Project: project, WorkunitsByState: map[string]int{}}
	var err error
	byProject := func(kind string) store.Query {
		return store.Query{Table: kind, Where: []store.Pred{store.Eq("project", project)}}
	}
	if ps.Samples, err = tx.QueryCount(byProject(KindSample)); err != nil {
		return ps, err
	}
	if ps.Workunits, err = tx.QueryCount(byProject(KindWorkunit)); err != nil {
		return ps, err
	}
	sids, err := tx.Lookup(KindSample, "project", project)
	if err != nil {
		return ps, err
	}
	if ps.Extracts, err = tx.QueryCount(store.Query{
		Table: KindExtract, Where: []store.Pred{store.InIDs("sample", sids)},
	}); err != nil {
		return ps, err
	}
	wids, err := tx.Lookup(KindWorkunit, "project", project)
	if err != nil {
		return ps, err
	}
	if ps.DataResources, err = tx.QueryCount(store.Query{
		Table: KindDataResource, Where: []store.Pred{store.InIDs("workunit", wids)},
	}); err != nil {
		return ps, err
	}
	res, err := tx.Aggregate(byProject(KindWorkunit).GroupBy("state"))
	if err != nil {
		return ps, err
	}
	for _, g := range res.Groups {
		if state, ok := g.Key.(string); ok {
			ps.WorkunitsByState[state] = g.Count()
		}
	}
	return ps, nil
}

// GroupedCount is one bucket of a grouped live count.
type GroupedCount struct {
	Key   any `json:"key"`
	Count int `json:"count"`
}

// CountsBy returns the live-count histogram of one kind grouped by an
// indexed (or unique) field, ordered by key — the backing of the
// portal's GET /api/stats/{kind}?by=field. The aggregate engine answers
// it by walking the grouping index's keys (count(postings)): O(distinct
// values), never O(rows). Unindexed fields are refused rather than
// silently degraded to a table scan.
func (db *DB) CountsBy(tx *store.Tx, kind, field string) ([]GroupedCount, error) {
	k := db.rg.Kind(kind)
	if k == nil {
		return nil, fmt.Errorf("model: %q: %w", kind, entity.ErrUnknownKind)
	}
	f := k.Field(field)
	if f == nil || !(f.Indexed || f.Unique || f.Type == entity.Ref) {
		return nil, fmt.Errorf("model: %s has no indexed field %q to group by: %w", kind, field, store.ErrBadQuery)
	}
	res, err := tx.Aggregate(store.Query{Table: kind}.GroupBy(field))
	if err != nil {
		return nil, err
	}
	out := make([]GroupedCount, len(res.Groups))
	for i, g := range res.Groups {
		out[i] = GroupedCount{Key: g.Key, Count: g.Count()}
	}
	return out, nil
}
