package workflow

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/store"
)

// TestQuickLinearChainsComplete: any randomly sized linear workflow, fired
// step by step, terminates in the completed state with a full history.
func TestQuickLinearChainsComplete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		def := Definition{Name: "chain", Initial: 1}
		for i := 1; i <= n; i++ {
			result := i + 1
			if i == n {
				result = Finish
			}
			def.Steps = append(def.Steps, Step{
				ID: i, Name: fmt.Sprintf("step %d", i),
				Actions: []Action{{Name: "next", Result: result}},
			})
		}
		s := store.New()
		e := NewEngine(s)
		if err := e.RegisterDefinition(def); err != nil {
			return false
		}
		var id int64
		err := s.Update(func(tx *store.Tx) error {
			var err error
			id, err = e.Start(tx, "chain", "q", nil)
			if err != nil {
				return err
			}
			for i := 0; i < n; i++ {
				if err := e.Fire(tx, id, "next", "q"); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return false
		}
		ok := true
		_ = s.View(func(tx *store.Tx) error {
			inst, err := e.Get(tx, id)
			if err != nil || inst.State != StateCompleted {
				ok = false
				return nil
			}
			h, err := e.History(tx, id)
			if err != nil || len(h) != n+1 { // (start) + n transitions
				ok = false
			}
			return nil
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickAutoChainsComplete: linear chains of auto actions complete from
// Start alone as long as they fit the auto budget.
func TestQuickAutoChainsComplete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30) // below the budget of 64
		def := Definition{Name: "auto-chain", Initial: 1}
		for i := 1; i <= n; i++ {
			result := i + 1
			if i == n {
				result = Finish
			}
			def.Steps = append(def.Steps, Step{
				ID: i, Name: fmt.Sprintf("s%d", i),
				Actions: []Action{{Name: "go", Result: result, Auto: true}},
			})
		}
		s := store.New()
		e := NewEngine(s)
		if err := e.RegisterDefinition(def); err != nil {
			return false
		}
		var id int64
		if err := s.Update(func(tx *store.Tx) error {
			var err error
			id, err = e.Start(tx, "auto-chain", "q", nil)
			return err
		}); err != nil {
			return false
		}
		ok := false
		_ = s.View(func(tx *store.Tx) error {
			inst, err := e.Get(tx, id)
			ok = err == nil && inst.State == StateCompleted
			return nil
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickVarsRoundTrip: arbitrary variable maps survive formatting,
// storage and reparsing.
func TestQuickVarsRoundTrip(t *testing.T) {
	f := func(keys []string, values []string) bool {
		m := map[string]string{}
		for i, k := range keys {
			if k == "" || i >= len(values) {
				continue
			}
			// '=' in keys cannot round-trip (the format is k=v).
			clean := true
			for _, r := range k {
				if r == '=' {
					clean = false
					break
				}
			}
			if !clean {
				continue
			}
			m[k] = values[i]
		}
		back := parseVars(formatVars(m))
		if len(back) != len(m) {
			return false
		}
		for k, v := range m {
			if back[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
