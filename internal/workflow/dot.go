package workflow

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the definition as a Graphviz digraph. If current is a valid
// step id, that step is highlighted — this is the "graphical representation
// of the workflow [where] the next step to be taken by the user is
// highlighted" from the paper's import and experiment screens.
func (d *Definition) DOT(current int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", d.Name)
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=box, style=rounded];\n")

	steps := append([]Step(nil), d.Steps...)
	sort.Slice(steps, func(i, j int) bool { return steps[i].ID < steps[j].ID })

	needFinish := false
	for _, s := range steps {
		attrs := fmt.Sprintf("label=%q", s.Name)
		if s.ID == current {
			attrs += `, style="rounded,filled", fillcolor=lightblue, penwidth=2`
		}
		if s.ID == d.Initial {
			attrs += `, peripheries=2`
		}
		fmt.Fprintf(&b, "  step%d [%s];\n", s.ID, attrs)
		for _, a := range s.Actions {
			if a.Result == Finish {
				needFinish = true
			}
		}
	}
	if needFinish {
		b.WriteString("  finish [shape=doublecircle, label=\"done\"];\n")
	}
	for _, s := range steps {
		for _, a := range s.Actions {
			label := a.Name
			if a.Auto {
				label += " (auto)"
			}
			if a.Condition != "" {
				label += fmt.Sprintf(" [%s]", a.Condition)
			}
			target := fmt.Sprintf("step%d", a.Result)
			if a.Result == Finish {
				target = "finish"
			}
			fmt.Fprintf(&b, "  step%d -> %s [label=%q];\n", s.ID, target, label)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
