// Package workflow implements the state-machine workflow engine that drives
// B-Fabric's guided processes: data imports (assign-extracts flow of
// Figure 10) and experiment executions (pending→ready flow of Figures
// 15–16). It stands in for the OSWorkflow engine used by the original
// system and supports the same model: named steps, actions with conditions
// and pre/post functions, automatic chaining, instance history, and a
// graphical (DOT) representation with the current step highlighted.
package workflow

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/store"
)

// Instance states.
const (
	// StateActive marks a running instance.
	StateActive = "active"
	// StateCompleted marks an instance that reached a terminal action.
	StateCompleted = "completed"
	// StateFailed marks an instance whose function raised an error.
	StateFailed = "failed"
)

// Finish is the reserved result value for actions that complete the
// workflow.
const Finish = -1

// Condition decides whether an action is currently available.
type Condition func(ctx *Context) (bool, error)

// Function is a pre- or post-function executed when an action fires.
type Function func(ctx *Context) error

// Action is a transition from one step to another (or to Finish).
type Action struct {
	// Name identifies the action within its step.
	Name string
	// Result is the id of the step to move to, or Finish.
	Result int
	// Auto actions fire automatically when their step is entered and
	// their condition passes.
	Auto bool
	// Condition gates the action; nil means always available.
	Condition string
	// PreFunctions run before the transition, in order.
	PreFunctions []string
	// PostFunctions run after the transition, in order.
	PostFunctions []string
}

// Step is one node of the workflow graph.
type Step struct {
	// ID is the step identifier, unique within the definition.
	ID int
	// Name is the human-readable step label shown in the portal.
	Name string
	// Actions are the transitions leaving this step.
	Actions []Action
}

// Definition is a complete workflow description.
type Definition struct {
	// Name identifies the definition ("data-import", "run-experiment").
	Name string
	// Initial is the id of the entry step.
	Initial int
	// Steps is the workflow graph.
	Steps []Step
}

func (d *Definition) step(id int) *Step {
	for i := range d.Steps {
		if d.Steps[i].ID == id {
			return &d.Steps[i]
		}
	}
	return nil
}

// Validate checks the structural sanity of a definition: non-empty name,
// existing initial step, unique step ids, action results pointing at
// existing steps, unique action names per step.
func (d *Definition) Validate() error {
	if d.Name == "" {
		return errors.New("workflow: empty definition name")
	}
	if len(d.Steps) == 0 {
		return fmt.Errorf("workflow %q: no steps", d.Name)
	}
	seen := make(map[int]bool)
	for _, s := range d.Steps {
		if seen[s.ID] {
			return fmt.Errorf("workflow %q: duplicate step id %d", d.Name, s.ID)
		}
		seen[s.ID] = true
		names := make(map[string]bool)
		for _, a := range s.Actions {
			if a.Name == "" {
				return fmt.Errorf("workflow %q step %d: unnamed action", d.Name, s.ID)
			}
			if names[a.Name] {
				return fmt.Errorf("workflow %q step %d: duplicate action %q", d.Name, s.ID, a.Name)
			}
			names[a.Name] = true
		}
	}
	if !seen[d.Initial] {
		return fmt.Errorf("workflow %q: initial step %d does not exist", d.Name, d.Initial)
	}
	for _, s := range d.Steps {
		for _, a := range s.Actions {
			if a.Result != Finish && !seen[a.Result] {
				return fmt.Errorf("workflow %q step %d action %q: result %d does not exist",
					d.Name, s.ID, a.Name, a.Result)
			}
		}
	}
	return nil
}

// Context is passed to conditions and functions when an action fires.
type Context struct {
	// Tx is the open transaction; functions may read and write through it.
	Tx *store.Tx
	// InstanceID identifies the running instance.
	InstanceID int64
	// Actor is the login firing the action.
	Actor string
	// Vars are the instance's mutable context variables. Changes made by
	// functions are persisted when the action completes.
	Vars map[string]string
}

// HistoryEntry records one fired action.
type HistoryEntry struct {
	ID       int64
	Instance int64
	Seq      int64
	Action   string
	FromStep int
	ToStep   int
	Actor    string
	Note     string
}

// Instance is a running (or finished) workflow.
type Instance struct {
	ID         int64
	Definition string
	Step       int
	State      string
	Vars       map[string]string
	// Error holds the failure message for failed instances.
	Error string
}

// Engine stores definitions, function registries and running instances.
type Engine struct {
	store      *store.Store
	defs       map[string]*Definition
	conditions map[string]Condition
	functions  map[string]Function
}

const (
	instTable = "workflow_instance"
	histTable = "workflow_history"
)

// Sentinel errors.
var (
	// ErrUnknownDefinition is returned for unregistered workflow names.
	ErrUnknownDefinition = errors.New("unknown workflow definition")
	// ErrUnknownAction is returned when firing an action the current step
	// does not offer.
	ErrUnknownAction = errors.New("unknown action")
	// ErrNotActive is returned when firing actions on finished instances.
	ErrNotActive = errors.New("workflow instance not active")
	// ErrConditionFalse is returned when an action's condition rejects it.
	ErrConditionFalse = errors.New("action condition not satisfied")
	// ErrUnknownFunction is returned when a definition references an
	// unregistered condition or function.
	ErrUnknownFunction = errors.New("unknown workflow function")
)

// NewEngine creates a workflow engine over the store.
func NewEngine(s *store.Store) *Engine {
	s.EnsureTable(instTable)
	s.EnsureTable(histTable)
	if !s.HasTable(instTable + "_marker") {
		_ = s.CreateIndex(instTable, "definition", false)
		_ = s.CreateIndex(instTable, "state", false)
		_ = s.CreateIndex(histTable, "instance", false)
		s.EnsureTable(instTable + "_marker")
	}
	return &Engine{
		store:      s,
		defs:       make(map[string]*Definition),
		conditions: make(map[string]Condition),
		functions:  make(map[string]Function),
	}
}

// RegisterDefinition validates and stores a workflow definition.
func (e *Engine) RegisterDefinition(d Definition) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if _, ok := e.defs[d.Name]; ok {
		return fmt.Errorf("workflow: definition %q already registered", d.Name)
	}
	// All referenced conditions/functions must exist up front, so failures
	// surface at registration rather than mid-instance.
	for _, s := range d.Steps {
		for _, a := range s.Actions {
			if a.Condition != "" {
				if _, ok := e.conditions[a.Condition]; !ok {
					return fmt.Errorf("workflow %q: condition %q: %w", d.Name, a.Condition, ErrUnknownFunction)
				}
			}
			for _, fn := range append(append([]string{}, a.PreFunctions...), a.PostFunctions...) {
				if _, ok := e.functions[fn]; !ok {
					return fmt.Errorf("workflow %q: function %q: %w", d.Name, fn, ErrUnknownFunction)
				}
			}
		}
	}
	def := d
	e.defs[d.Name] = &def
	return nil
}

// RegisterCondition names a condition usable by definitions.
func (e *Engine) RegisterCondition(name string, c Condition) {
	e.conditions[name] = c
}

// RegisterFunction names a pre/post function usable by definitions.
func (e *Engine) RegisterFunction(name string, f Function) {
	e.functions[name] = f
}

// Definition returns a registered definition, or nil.
func (e *Engine) Definition(name string) *Definition { return e.defs[name] }

// Definitions returns the sorted names of registered definitions.
func (e *Engine) Definitions() []string {
	out := make([]string, 0, len(e.defs))
	for n := range e.defs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func instanceFromRecord(r store.Record) Instance {
	return Instance{
		ID:         r.ID(),
		Definition: r.String("definition"),
		Step:       int(r.Int("step")),
		State:      r.String("state"),
		Vars:       parseVars(r.Strings("vars")),
		Error:      r.String("error"),
	}
}

func parseVars(list []string) map[string]string {
	m := make(map[string]string, len(list))
	for _, kv := range list {
		if i := strings.IndexByte(kv, '='); i >= 0 {
			m[kv[:i]] = kv[i+1:]
		}
	}
	return m
}

func formatVars(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = k + "=" + m[k]
	}
	return out
}

// Start creates a new instance of the named definition with the given
// initial context variables, then fires any eligible auto actions.
func (e *Engine) Start(tx *store.Tx, defName, actor string, vars map[string]string) (int64, error) {
	def, ok := e.defs[defName]
	if !ok {
		return 0, fmt.Errorf("workflow: %q: %w", defName, ErrUnknownDefinition)
	}
	if vars == nil {
		vars = map[string]string{}
	}
	id, err := tx.Insert(instTable, store.Record{
		"definition": defName,
		"step":       int64(def.Initial),
		"state":      StateActive,
		"vars":       formatVars(vars),
		"error":      "",
	})
	if err != nil {
		return 0, err
	}
	if err := e.appendHistory(tx, id, "(start)", 0, def.Initial, actor, ""); err != nil {
		return 0, err
	}
	if err := e.runAutoActions(tx, id, actor); err != nil {
		return 0, err
	}
	return id, nil
}

// Get returns the instance with the given id.
func (e *Engine) Get(tx *store.Tx, id int64) (Instance, error) {
	r, err := tx.Get(instTable, id)
	if err != nil {
		return Instance{}, err
	}
	return instanceFromRecord(r), nil
}

// AvailableActions returns the names of the current step's actions whose
// conditions pass, for an active instance.
func (e *Engine) AvailableActions(tx *store.Tx, id int64, actor string) ([]string, error) {
	inst, err := e.Get(tx, id)
	if err != nil {
		return nil, err
	}
	if inst.State != StateActive {
		return nil, nil
	}
	def, ok := e.defs[inst.Definition]
	if !ok {
		return nil, fmt.Errorf("workflow: %q: %w", inst.Definition, ErrUnknownDefinition)
	}
	step := def.step(inst.Step)
	if step == nil {
		return nil, fmt.Errorf("workflow: instance %d at missing step %d", id, inst.Step)
	}
	ctx := &Context{Tx: tx, InstanceID: id, Actor: actor, Vars: inst.Vars}
	var out []string
	for _, a := range step.Actions {
		ok, err := e.conditionPasses(a, ctx)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, a.Name)
		}
	}
	return out, nil
}

func (e *Engine) conditionPasses(a Action, ctx *Context) (bool, error) {
	if a.Condition == "" {
		return true, nil
	}
	cond, ok := e.conditions[a.Condition]
	if !ok {
		return false, fmt.Errorf("workflow: condition %q: %w", a.Condition, ErrUnknownFunction)
	}
	return cond(ctx)
}

// Fire executes the named action on an active instance: condition check,
// pre-functions, transition, post-functions, history append, then any auto
// actions of the new step. A function error marks the instance failed and
// is returned.
func (e *Engine) Fire(tx *store.Tx, id int64, action, actor string) error {
	if err := e.fireOne(tx, id, action, actor); err != nil {
		return err
	}
	return e.runAutoActions(tx, id, actor)
}

func (e *Engine) fireOne(tx *store.Tx, id int64, action, actor string) error {
	r, err := tx.Get(instTable, id)
	if err != nil {
		return err
	}
	inst := instanceFromRecord(r)
	if inst.State != StateActive {
		return fmt.Errorf("workflow: instance %d is %q: %w", id, inst.State, ErrNotActive)
	}
	def, ok := e.defs[inst.Definition]
	if !ok {
		return fmt.Errorf("workflow: %q: %w", inst.Definition, ErrUnknownDefinition)
	}
	step := def.step(inst.Step)
	if step == nil {
		return fmt.Errorf("workflow: instance %d at missing step %d", id, inst.Step)
	}
	var act *Action
	for i := range step.Actions {
		if step.Actions[i].Name == action {
			act = &step.Actions[i]
			break
		}
	}
	if act == nil {
		return fmt.Errorf("workflow: step %q has no action %q: %w", step.Name, action, ErrUnknownAction)
	}
	ctx := &Context{Tx: tx, InstanceID: id, Actor: actor, Vars: inst.Vars}
	pass, err := e.conditionPasses(*act, ctx)
	if err != nil {
		return err
	}
	if !pass {
		return fmt.Errorf("workflow: action %q: %w", action, ErrConditionFalse)
	}
	fail := func(cause error) error {
		r["state"] = StateFailed
		r["error"] = cause.Error()
		r["vars"] = formatVars(ctx.Vars)
		if putErr := tx.Put(instTable, id, r); putErr != nil {
			return putErr
		}
		_ = e.appendHistory(tx, id, act.Name, inst.Step, inst.Step, actor, "FAILED: "+cause.Error())
		return cause
	}
	for _, fn := range act.PreFunctions {
		if err := e.functions[fn](ctx); err != nil {
			return fail(fmt.Errorf("pre-function %q: %w", fn, err))
		}
	}
	toStep := act.Result
	if toStep == Finish {
		r["state"] = StateCompleted
	} else {
		r["step"] = int64(toStep)
	}
	r["vars"] = formatVars(ctx.Vars)
	if err := tx.Put(instTable, id, r); err != nil {
		return err
	}
	for _, fn := range act.PostFunctions {
		if err := e.functions[fn](ctx); err != nil {
			return fail(fmt.Errorf("post-function %q: %w", fn, err))
		}
	}
	// Post-functions may have mutated vars; persist the final state.
	r["vars"] = formatVars(ctx.Vars)
	if err := tx.Put(instTable, id, r); err != nil {
		return err
	}
	return e.appendHistory(tx, id, act.Name, inst.Step, toStep, actor, "")
}

// runAutoActions fires eligible auto actions until none remain, guarding
// against definition cycles with a step budget.
func (e *Engine) runAutoActions(tx *store.Tx, id int64, actor string) error {
	const budget = 64
	for i := 0; i < budget; i++ {
		inst, err := e.Get(tx, id)
		if err != nil {
			return err
		}
		if inst.State != StateActive {
			return nil
		}
		def := e.defs[inst.Definition]
		step := def.step(inst.Step)
		if step == nil {
			return fmt.Errorf("workflow: instance %d at missing step %d", id, inst.Step)
		}
		fired := false
		ctx := &Context{Tx: tx, InstanceID: id, Actor: actor, Vars: inst.Vars}
		for _, a := range step.Actions {
			if !a.Auto {
				continue
			}
			ok, err := e.conditionPasses(a, ctx)
			if err != nil {
				return err
			}
			if ok {
				if err := e.fireOne(tx, id, a.Name, actor); err != nil {
					return err
				}
				fired = true
				break
			}
		}
		if !fired {
			return nil
		}
	}
	return fmt.Errorf("workflow: instance %d exceeded auto-action budget", id)
}

// SetVar updates one context variable of an active instance.
func (e *Engine) SetVar(tx *store.Tx, id int64, key, value string) error {
	r, err := tx.Get(instTable, id)
	if err != nil {
		return err
	}
	vars := parseVars(r.Strings("vars"))
	vars[key] = value
	r["vars"] = formatVars(vars)
	return tx.Put(instTable, id, r)
}

func (e *Engine) appendHistory(tx *store.Tx, inst int64, action string, from, to int, actor, note string) error {
	existing, err := tx.Lookup(histTable, "instance", inst)
	if err != nil {
		return err
	}
	_, err = tx.Insert(histTable, store.Record{
		"instance": inst,
		"seq":      int64(len(existing) + 1),
		"action":   action,
		"from":     int64(from),
		"to":       int64(to),
		"actor":    actor,
		"note":     note,
	})
	return err
}

// History returns the fired actions of an instance in sequence order.
func (e *Engine) History(tx *store.Tx, id int64) ([]HistoryEntry, error) {
	rs, err := tx.Find(histTable, "instance", id)
	if err != nil {
		return nil, err
	}
	out := make([]HistoryEntry, 0, len(rs))
	for _, r := range rs {
		out = append(out, HistoryEntry{
			ID: r.ID(), Instance: r.Int("instance"), Seq: r.Int("seq"),
			Action: r.String("action"), FromStep: int(r.Int("from")),
			ToStep: int(r.Int("to")), Actor: r.String("actor"),
			Note: r.String("note"),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

// ActiveInstances returns the ids of all active instances, for the admin
// workflow-management screens.
func (e *Engine) ActiveInstances(tx *store.Tx) ([]int64, error) {
	return tx.Lookup(instTable, "state", StateActive)
}

// FailedInstances returns the ids of failed instances, for the admin error
// management screen.
func (e *Engine) FailedInstances(tx *store.Tx) ([]int64, error) {
	return tx.Lookup(instTable, "state", StateFailed)
}
