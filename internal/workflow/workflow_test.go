package workflow

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/store"
)

// twoStepDef builds a simple fetch→assign→finish import-like workflow.
func twoStepDef() Definition {
	return Definition{
		Name:    "data-import",
		Initial: 1,
		Steps: []Step{
			{ID: 1, Name: "fetch files", Actions: []Action{
				{Name: "fetched", Result: 2},
			}},
			{ID: 2, Name: "assign extracts", Actions: []Action{
				{Name: "save", Result: Finish},
				{Name: "back", Result: 1},
			}},
		},
	}
}

func newEngine(t *testing.T) (*Engine, *store.Store) {
	t.Helper()
	s := store.New()
	return NewEngine(s), s
}

func TestDefinitionValidate(t *testing.T) {
	cases := []struct {
		name string
		def  Definition
		ok   bool
	}{
		{"valid", twoStepDef(), true},
		{"empty name", Definition{Initial: 1, Steps: []Step{{ID: 1}}}, false},
		{"no steps", Definition{Name: "x", Initial: 1}, false},
		{"bad initial", Definition{Name: "x", Initial: 9, Steps: []Step{{ID: 1}}}, false},
		{"dup step ids", Definition{Name: "x", Initial: 1, Steps: []Step{{ID: 1}, {ID: 1}}}, false},
		{"dangling result", Definition{Name: "x", Initial: 1, Steps: []Step{
			{ID: 1, Actions: []Action{{Name: "go", Result: 5}}},
		}}, false},
		{"unnamed action", Definition{Name: "x", Initial: 1, Steps: []Step{
			{ID: 1, Actions: []Action{{Result: Finish}}},
		}}, false},
		{"dup action names", Definition{Name: "x", Initial: 1, Steps: []Step{
			{ID: 1, Actions: []Action{{Name: "a", Result: Finish}, {Name: "a", Result: Finish}}},
		}}, false},
	}
	for _, c := range cases {
		err := c.def.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: validation passed", c.name)
		}
	}
}

func TestRegisterRejectsUnknownFunctions(t *testing.T) {
	e, _ := newEngine(t)
	def := twoStepDef()
	def.Steps[0].Actions[0].PreFunctions = []string{"missing"}
	if err := e.RegisterDefinition(def); !errors.Is(err, ErrUnknownFunction) {
		t.Errorf("got %v, want ErrUnknownFunction", err)
	}
	def2 := twoStepDef()
	def2.Steps[0].Actions[0].Condition = "missingCond"
	if err := e.RegisterDefinition(def2); !errors.Is(err, ErrUnknownFunction) {
		t.Errorf("got %v, want ErrUnknownFunction", err)
	}
}

func TestStartAndFireToCompletion(t *testing.T) {
	e, s := newEngine(t)
	if err := e.RegisterDefinition(twoStepDef()); err != nil {
		t.Fatal(err)
	}
	var id int64
	err := s.Update(func(tx *store.Tx) error {
		var err error
		id, err = e.Start(tx, "data-import", "alice", map[string]string{"workunit": "42"})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = s.View(func(tx *store.Tx) error {
		inst, err := e.Get(tx, id)
		if err != nil {
			t.Fatal(err)
		}
		if inst.State != StateActive || inst.Step != 1 {
			t.Errorf("instance = %+v", inst)
		}
		if inst.Vars["workunit"] != "42" {
			t.Errorf("vars = %v", inst.Vars)
		}
		acts, _ := e.AvailableActions(tx, id, "alice")
		if len(acts) != 1 || acts[0] != "fetched" {
			t.Errorf("actions = %v", acts)
		}
		return nil
	})
	if err := s.Update(func(tx *store.Tx) error { return e.Fire(tx, id, "fetched", "alice") }); err != nil {
		t.Fatal(err)
	}
	_ = s.View(func(tx *store.Tx) error {
		inst, _ := e.Get(tx, id)
		if inst.Step != 2 || inst.State != StateActive {
			t.Errorf("after fetched: %+v", inst)
		}
		return nil
	})
	if err := s.Update(func(tx *store.Tx) error { return e.Fire(tx, id, "save", "alice") }); err != nil {
		t.Fatal(err)
	}
	_ = s.View(func(tx *store.Tx) error {
		inst, _ := e.Get(tx, id)
		if inst.State != StateCompleted {
			t.Errorf("final state = %q", inst.State)
		}
		return nil
	})
}

func TestFireUnknownAction(t *testing.T) {
	e, s := newEngine(t)
	_ = e.RegisterDefinition(twoStepDef())
	var id int64
	_ = s.Update(func(tx *store.Tx) error {
		id, _ = e.Start(tx, "data-import", "a", nil)
		return nil
	})
	err := s.Update(func(tx *store.Tx) error { return e.Fire(tx, id, "bogus", "a") })
	if !errors.Is(err, ErrUnknownAction) {
		t.Fatalf("got %v, want ErrUnknownAction", err)
	}
}

func TestFireOnCompletedInstance(t *testing.T) {
	e, s := newEngine(t)
	_ = e.RegisterDefinition(twoStepDef())
	var id int64
	_ = s.Update(func(tx *store.Tx) error {
		id, _ = e.Start(tx, "data-import", "a", nil)
		if err := e.Fire(tx, id, "fetched", "a"); err != nil {
			return err
		}
		return e.Fire(tx, id, "save", "a")
	})
	err := s.Update(func(tx *store.Tx) error { return e.Fire(tx, id, "back", "a") })
	if !errors.Is(err, ErrNotActive) {
		t.Fatalf("got %v, want ErrNotActive", err)
	}
}

func TestStartUnknownDefinition(t *testing.T) {
	e, s := newEngine(t)
	err := s.Update(func(tx *store.Tx) error {
		_, err := e.Start(tx, "nope", "a", nil)
		return err
	})
	if !errors.Is(err, ErrUnknownDefinition) {
		t.Fatalf("got %v, want ErrUnknownDefinition", err)
	}
}

func TestConditionsGateActions(t *testing.T) {
	e, s := newEngine(t)
	e.RegisterCondition("resourcesAssigned", func(ctx *Context) (bool, error) {
		return ctx.Vars["assigned"] == "yes", nil
	})
	def := Definition{
		Name:    "guarded",
		Initial: 1,
		Steps: []Step{
			{ID: 1, Name: "assign", Actions: []Action{
				{Name: "done", Result: Finish, Condition: "resourcesAssigned"},
				{Name: "wait", Result: 1},
			}},
		},
	}
	if err := e.RegisterDefinition(def); err != nil {
		t.Fatal(err)
	}
	var id int64
	_ = s.Update(func(tx *store.Tx) error {
		id, _ = e.Start(tx, "guarded", "a", nil)
		return nil
	})
	// Condition false: action unavailable and firing fails.
	_ = s.View(func(tx *store.Tx) error {
		acts, _ := e.AvailableActions(tx, id, "a")
		if len(acts) != 1 || acts[0] != "wait" {
			t.Errorf("actions = %v", acts)
		}
		return nil
	})
	err := s.Update(func(tx *store.Tx) error { return e.Fire(tx, id, "done", "a") })
	if !errors.Is(err, ErrConditionFalse) {
		t.Fatalf("got %v, want ErrConditionFalse", err)
	}
	// Set the variable, condition passes.
	_ = s.Update(func(tx *store.Tx) error { return e.SetVar(tx, id, "assigned", "yes") })
	if err := s.Update(func(tx *store.Tx) error { return e.Fire(tx, id, "done", "a") }); err != nil {
		t.Fatal(err)
	}
}

func TestPrePostFunctionsRunInOrder(t *testing.T) {
	e, s := newEngine(t)
	var calls []string
	e.RegisterFunction("pre1", func(ctx *Context) error { calls = append(calls, "pre1"); return nil })
	e.RegisterFunction("pre2", func(ctx *Context) error { calls = append(calls, "pre2"); return nil })
	e.RegisterFunction("post1", func(ctx *Context) error { calls = append(calls, "post1"); return nil })
	def := Definition{
		Name: "fn", Initial: 1,
		Steps: []Step{{ID: 1, Name: "s", Actions: []Action{{
			Name: "go", Result: Finish,
			PreFunctions:  []string{"pre1", "pre2"},
			PostFunctions: []string{"post1"},
		}}}},
	}
	if err := e.RegisterDefinition(def); err != nil {
		t.Fatal(err)
	}
	var id int64
	_ = s.Update(func(tx *store.Tx) error {
		id, _ = e.Start(tx, "fn", "a", nil)
		return e.Fire(tx, id, "go", "a")
	})
	want := []string{"pre1", "pre2", "post1"}
	if fmt.Sprint(calls) != fmt.Sprint(want) {
		t.Errorf("calls = %v, want %v", calls, want)
	}
}

func TestFunctionFailureMarksInstanceFailed(t *testing.T) {
	e, s := newEngine(t)
	boom := errors.New("rserve unreachable")
	e.RegisterFunction("explode", func(ctx *Context) error { return boom })
	def := Definition{
		Name: "failing", Initial: 1,
		Steps: []Step{{ID: 1, Name: "s", Actions: []Action{{
			Name: "go", Result: Finish, PostFunctions: []string{"explode"},
		}}}},
	}
	if err := e.RegisterDefinition(def); err != nil {
		t.Fatal(err)
	}
	var id int64
	err := s.Update(func(tx *store.Tx) error {
		var startErr error
		id, startErr = e.Start(tx, "failing", "a", nil)
		if startErr != nil {
			return startErr
		}
		if fireErr := e.Fire(tx, id, "go", "a"); !errors.Is(fireErr, boom) {
			t.Errorf("Fire = %v, want boom", fireErr)
		}
		return nil // commit the failure state
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = s.View(func(tx *store.Tx) error {
		inst, _ := e.Get(tx, id)
		if inst.State != StateFailed {
			t.Errorf("state = %q", inst.State)
		}
		if !strings.Contains(inst.Error, "rserve unreachable") {
			t.Errorf("error = %q", inst.Error)
		}
		failed, _ := e.FailedInstances(tx)
		if len(failed) != 1 || failed[0] != id {
			t.Errorf("FailedInstances = %v", failed)
		}
		return nil
	})
}

func TestAutoActionsChain(t *testing.T) {
	// Models the single-step "generate R report" workflow of Figure 15:
	// start → (auto) run → finish, with a post-function doing the work.
	e, s := newEngine(t)
	ran := false
	e.RegisterFunction("generateReport", func(ctx *Context) error {
		ran = true
		ctx.Vars["report"] = "ready"
		return nil
	})
	def := Definition{
		Name: "run-experiment", Initial: 1,
		Steps: []Step{{ID: 1, Name: "generate R report", Actions: []Action{{
			Name: "run", Result: Finish, Auto: true,
			PostFunctions: []string{"generateReport"},
		}}}},
	}
	if err := e.RegisterDefinition(def); err != nil {
		t.Fatal(err)
	}
	var id int64
	_ = s.Update(func(tx *store.Tx) error {
		id, _ = e.Start(tx, "run-experiment", "alice", nil)
		return nil
	})
	if !ran {
		t.Error("auto action did not run")
	}
	_ = s.View(func(tx *store.Tx) error {
		inst, _ := e.Get(tx, id)
		if inst.State != StateCompleted || inst.Vars["report"] != "ready" {
			t.Errorf("instance = %+v", inst)
		}
		return nil
	})
}

func TestAutoActionBudgetStopsCycles(t *testing.T) {
	e, s := newEngine(t)
	def := Definition{
		Name: "loop", Initial: 1,
		Steps: []Step{
			{ID: 1, Name: "a", Actions: []Action{{Name: "go", Result: 2, Auto: true}}},
			{ID: 2, Name: "b", Actions: []Action{{Name: "back", Result: 1, Auto: true}}},
		},
	}
	if err := e.RegisterDefinition(def); err != nil {
		t.Fatal(err)
	}
	err := s.Update(func(tx *store.Tx) error {
		_, err := e.Start(tx, "loop", "a", nil)
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("got %v, want budget error", err)
	}
}

func TestHistoryRecordsTransitions(t *testing.T) {
	e, s := newEngine(t)
	_ = e.RegisterDefinition(twoStepDef())
	var id int64
	_ = s.Update(func(tx *store.Tx) error {
		id, _ = e.Start(tx, "data-import", "alice", nil)
		if err := e.Fire(tx, id, "fetched", "alice"); err != nil {
			return err
		}
		return e.Fire(tx, id, "save", "bob")
	})
	_ = s.View(func(tx *store.Tx) error {
		h, err := e.History(tx, id)
		if err != nil {
			t.Fatal(err)
		}
		if len(h) != 3 {
			t.Fatalf("history = %+v", h)
		}
		if h[0].Action != "(start)" || h[1].Action != "fetched" || h[2].Action != "save" {
			t.Errorf("history actions = %+v", h)
		}
		if h[1].FromStep != 1 || h[1].ToStep != 2 || h[1].Actor != "alice" {
			t.Errorf("entry = %+v", h[1])
		}
		if h[2].ToStep != Finish {
			t.Errorf("final entry = %+v", h[2])
		}
		return nil
	})
}

func TestVarsPersistAcrossFunctions(t *testing.T) {
	e, s := newEngine(t)
	e.RegisterFunction("setResult", func(ctx *Context) error {
		ctx.Vars["result_workunit"] = "99"
		return nil
	})
	def := Definition{
		Name: "vars", Initial: 1,
		Steps: []Step{
			{ID: 1, Name: "s1", Actions: []Action{{Name: "go", Result: 2, PostFunctions: []string{"setResult"}}}},
			{ID: 2, Name: "s2", Actions: []Action{{Name: "end", Result: Finish}}},
		},
	}
	if err := e.RegisterDefinition(def); err != nil {
		t.Fatal(err)
	}
	var id int64
	_ = s.Update(func(tx *store.Tx) error {
		id, _ = e.Start(tx, "vars", "a", map[string]string{"seed": "1"})
		return e.Fire(tx, id, "go", "a")
	})
	_ = s.View(func(tx *store.Tx) error {
		inst, _ := e.Get(tx, id)
		if inst.Vars["result_workunit"] != "99" || inst.Vars["seed"] != "1" {
			t.Errorf("vars = %v", inst.Vars)
		}
		return nil
	})
}

func TestActiveInstances(t *testing.T) {
	e, s := newEngine(t)
	_ = e.RegisterDefinition(twoStepDef())
	var a, b int64
	_ = s.Update(func(tx *store.Tx) error {
		a, _ = e.Start(tx, "data-import", "x", nil)
		b, _ = e.Start(tx, "data-import", "x", nil)
		if err := e.Fire(tx, a, "fetched", "x"); err != nil {
			return err
		}
		return e.Fire(tx, a, "save", "x")
	})
	_ = s.View(func(tx *store.Tx) error {
		active, err := e.ActiveInstances(tx)
		if err != nil {
			t.Fatal(err)
		}
		if len(active) != 1 || active[0] != b {
			t.Errorf("active = %v", active)
		}
		return nil
	})
}

func TestDuplicateDefinitionRejected(t *testing.T) {
	e, _ := newEngine(t)
	if err := e.RegisterDefinition(twoStepDef()); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterDefinition(twoStepDef()); err == nil {
		t.Error("duplicate definition accepted")
	}
}

func TestDefinitionsSorted(t *testing.T) {
	e, _ := newEngine(t)
	_ = e.RegisterDefinition(Definition{Name: "zzz", Initial: 1, Steps: []Step{{ID: 1, Name: "s"}}})
	_ = e.RegisterDefinition(Definition{Name: "aaa", Initial: 1, Steps: []Step{{ID: 1, Name: "s"}}})
	got := e.Definitions()
	if len(got) != 2 || got[0] != "aaa" || got[1] != "zzz" {
		t.Errorf("Definitions = %v", got)
	}
	if e.Definition("aaa") == nil || e.Definition("nope") != nil {
		t.Error("Definition lookup wrong")
	}
}

func TestDOTExport(t *testing.T) {
	def := twoStepDef()
	dot := def.DOT(2)
	for _, want := range []string{
		"digraph \"data-import\"",
		"step1", "step2",
		"fetch files", "assign extracts",
		"fillcolor=lightblue", // current step highlighted
		"finish",              // terminal node present
		"peripheries=2",       // initial step marked
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// No highlight when current step doesn't exist.
	plain := def.DOT(-99)
	if strings.Contains(plain, "lightblue") {
		t.Error("unexpected highlight")
	}
}

func TestSetVarOnMissingInstance(t *testing.T) {
	e, s := newEngine(t)
	err := s.Update(func(tx *store.Tx) error { return e.SetVar(tx, 42, "k", "v") })
	if !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("got %v, want ErrNotFound", err)
	}
}
