// Package core assembles the complete B-Fabric system: the store, event
// bus, entity registry with the domain schema, and every service —
// vocabularies, tasks, workflows, storage, providers, import, application
// integration, search, audit and auth — wired together exactly as the
// examples, the portal and the benchmark harness consume them.
//
// # Wiring and recovery
//
// Wiring is idempotent over restored state: tables are ensured, not
// created, and secondary indexes are rebuilt from recovered rows. That is
// what lets New(Options{DataDir: ...}) recover a durable store (snapshot +
// WAL replay, see internal/store) and then re-register the schema on top.
// Each schema-registration step publishes a new store version atomically,
// so even a system wired while another component is already reading never
// exposes a half-built index.
//
// # Concurrency
//
// The store underneath is multi-versioned (see internal/store and
// docs/concurrency.md). For every service in this package that means:
//
//   - System.View pins the committed version current at the call and runs
//     entirely lock-free — portal page renders, similarity scans and
//     search flush reads proceed at full speed while imports commit;
//   - System.Update serializes with other writers and publishes its
//     changes as one new version, so service-layer read-modify-write
//     logic (task claims, vocabulary merges, workflow steps) needs no
//     conflict handling;
//   - entity events are delivered inside the still-open write transaction;
//     observers that re-read committed state afterwards must synchronize
//     with Store.Barrier, as internal/search does.
//
// Services hold no store-wide locks of their own: all cross-service
// consistency derives from transactions pinning one version.
package core
