package core

import (
	"time"

	"repro/internal/apps"
	"repro/internal/audit"
	"repro/internal/auth"
	"repro/internal/entity"
	"repro/internal/events"
	"repro/internal/importer"
	"repro/internal/model"
	"repro/internal/provider"
	"repro/internal/search"
	"repro/internal/storage"
	"repro/internal/store"
	"repro/internal/tasks"
	"repro/internal/vocab"
	"repro/internal/workflow"
)

// Options tunes which optional subsystems a System carries. The zero value
// enables everything and keeps the store in memory.
type Options struct {
	// DisableSearch skips the full-text index (useful for bulk-load
	// benchmarks where indexing would dominate).
	DisableSearch bool
	// DisableAudit skips the audit log.
	DisableAudit bool

	// DataDir, when non-empty, makes the system durable: the store is
	// opened (and recovered) from this directory and every commit goes
	// through the write-ahead log. Empty keeps the classic in-memory
	// store.
	DataDir string
	// Sync is the WAL sync policy (store.SyncAlways unless set).
	Sync store.SyncPolicy
	// SyncEvery is the background fsync period under store.SyncInterval.
	SyncEvery time.Duration
	// SnapshotEvery is the WAL size in bytes that triggers a background
	// snapshot + truncation; 0 = store default (64 MiB), negative
	// disables automatic snapshots.
	SnapshotEvery int64
	// OnStoreError receives background durability failures (e.g. a
	// failing snapshot while the WAL keeps growing) so the host process
	// can log them as they happen instead of discovering them at Close.
	OnStoreError func(error)
	// FS substitutes the filesystem under the durable write path; nil
	// means the real one. A test seam: fault-injection tests run a whole
	// system over a store.FaultFS to prove degraded mode end to end.
	FS store.FS
}

// System is a fully wired B-Fabric instance.
type System struct {
	Store      *store.Store
	Bus        *events.Bus
	Registry   *entity.Registry
	DB         *model.DB
	Vocab      *vocab.Service
	Tasks      *tasks.Engine
	Workflows  *workflow.Engine
	Storage    *storage.Manager
	Providers  *provider.Hub
	Importer   *importer.Service
	Connectors *apps.Registry
	Executor   *apps.Executor
	Search     *search.Service // nil when disabled
	Audit      *audit.Log      // nil when disabled
	Auth       *auth.Service
}

// New builds a complete system. With Options.DataDir set the store is
// durable — recovered from the directory's snapshot + WAL on startup —
// otherwise it is a fresh in-memory store. Durable systems should be
// Closed to get the final WAL fsync.
func New(opts Options) (*System, error) {
	if opts.DataDir == "" {
		return NewWithStore(store.New(), opts)
	}
	s, err := store.Open(opts.DataDir, store.DurabilityOptions{
		Sync:          opts.Sync,
		SyncEvery:     opts.SyncEvery,
		SnapshotEvery: opts.SnapshotEvery,
		OnError:       opts.OnStoreError,
		FS:            opts.FS,
	})
	if err != nil {
		return nil, err
	}
	sys, err := NewWithStore(s, opts)
	if err != nil {
		s.Close()
		return nil, err
	}
	return sys, nil
}

// NewWithStore wires a system over an existing store — typically one just
// restored from a snapshot. Schema registration and index creation are
// idempotent over restored state.
func NewWithStore(s *store.Store, opts Options) (*System, error) {
	bus := events.NewBus()
	rg := entity.NewRegistry(s, bus)
	if err := model.RegisterSchema(rg); err != nil {
		return nil, err
	}
	db := model.NewDB(rg)
	sys := &System{
		Store:      s,
		Bus:        bus,
		Registry:   rg,
		DB:         db,
		Vocab:      vocab.New(rg, model.AnnotatedFields(rg)),
		Tasks:      tasks.New(s, bus),
		Workflows:  workflow.NewEngine(s),
		Storage:    storage.NewManager(),
		Providers:  provider.NewHub(),
		Connectors: apps.NewRegistry(),
		Auth:       auth.New(db),
	}
	if !opts.DisableAudit {
		sys.Audit = audit.New(s, bus)
	}
	imp, err := importer.New(db, sys.Storage, sys.Providers, sys.Workflows, sys.Tasks)
	if err != nil {
		return nil, err
	}
	sys.Importer = imp
	if err := sys.Connectors.Register(apps.NewRserveConnector()); err != nil {
		return nil, err
	}
	if err := sys.Connectors.Register(apps.NewShellConnector()); err != nil {
		return nil, err
	}
	ex, err := apps.NewExecutor(db, sys.Storage, sys.Connectors, sys.Workflows, sys.Tasks)
	if err != nil {
		return nil, err
	}
	sys.Executor = ex
	if !opts.DisableSearch {
		sys.Search = search.New(rg)
	}
	return sys, nil
}

// MustNew builds a system and panics on wiring errors; for examples and
// benchmarks where wiring cannot legitimately fail.
func MustNew(opts Options) *System {
	sys, err := New(opts)
	if err != nil {
		panic(err)
	}
	return sys
}

// Update runs fn in a read-write transaction on the system store. Update
// transactions serialize with each other on the store's writer mutex but
// never block readers, which continue on earlier versions.
func (sys *System) Update(fn func(tx *store.Tx) error) error {
	return sys.Store.Update(fn)
}

// View runs fn in a read-only transaction pinned to the committed store
// version current at the call. fn runs lock-free and sees one consistent
// snapshot regardless of concurrent writers.
func (sys *System) View(fn func(tx *store.Tx) error) error {
	return sys.Store.View(fn)
}

// Health reports the store's write-path health: OK while commits can be
// made durable, degraded (with the root cause and onset time) once the
// WAL or the disk under it has failed. Reads remain available either
// way. Lock-free; serving this from a health endpoint at any rate is
// free.
func (sys *System) Health() store.Health {
	return sys.Store.Health()
}

// Close shuts the system down. On durable systems this flushes and closes
// the write-ahead log; a cleanly closed system is fully durable regardless
// of sync policy. In-memory systems only reject further transactions.
func (sys *System) Close() error {
	return sys.Store.Close()
}
