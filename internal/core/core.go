// Package core assembles the complete B-Fabric system: the store, event
// bus, entity registry with the domain schema, and every service —
// vocabularies, tasks, workflows, storage, providers, import, application
// integration, search, audit and auth — wired together exactly as the
// examples, the portal and the benchmark harness consume them.
package core

import (
	"repro/internal/apps"
	"repro/internal/audit"
	"repro/internal/auth"
	"repro/internal/entity"
	"repro/internal/events"
	"repro/internal/importer"
	"repro/internal/model"
	"repro/internal/provider"
	"repro/internal/search"
	"repro/internal/storage"
	"repro/internal/store"
	"repro/internal/tasks"
	"repro/internal/vocab"
	"repro/internal/workflow"
)

// Options tunes which optional subsystems a System carries. The zero value
// enables everything.
type Options struct {
	// DisableSearch skips the full-text index (useful for bulk-load
	// benchmarks where indexing would dominate).
	DisableSearch bool
	// DisableAudit skips the audit log.
	DisableAudit bool
}

// System is a fully wired B-Fabric instance.
type System struct {
	Store      *store.Store
	Bus        *events.Bus
	Registry   *entity.Registry
	DB         *model.DB
	Vocab      *vocab.Service
	Tasks      *tasks.Engine
	Workflows  *workflow.Engine
	Storage    *storage.Manager
	Providers  *provider.Hub
	Importer   *importer.Service
	Connectors *apps.Registry
	Executor   *apps.Executor
	Search     *search.Service // nil when disabled
	Audit      *audit.Log      // nil when disabled
	Auth       *auth.Service
}

// New builds a complete in-memory system over a fresh store.
func New(opts Options) (*System, error) {
	return NewWithStore(store.New(), opts)
}

// NewWithStore wires a system over an existing store — typically one just
// restored from a snapshot. Schema registration and index creation are
// idempotent over restored state.
func NewWithStore(s *store.Store, opts Options) (*System, error) {
	bus := events.NewBus()
	rg := entity.NewRegistry(s, bus)
	if err := model.RegisterSchema(rg); err != nil {
		return nil, err
	}
	db := model.NewDB(rg)
	sys := &System{
		Store:      s,
		Bus:        bus,
		Registry:   rg,
		DB:         db,
		Vocab:      vocab.New(rg, model.AnnotatedFields(rg)),
		Tasks:      tasks.New(s, bus),
		Workflows:  workflow.NewEngine(s),
		Storage:    storage.NewManager(),
		Providers:  provider.NewHub(),
		Connectors: apps.NewRegistry(),
		Auth:       auth.New(db),
	}
	if !opts.DisableAudit {
		sys.Audit = audit.New(s, bus)
	}
	imp, err := importer.New(db, sys.Storage, sys.Providers, sys.Workflows, sys.Tasks)
	if err != nil {
		return nil, err
	}
	sys.Importer = imp
	if err := sys.Connectors.Register(apps.NewRserveConnector()); err != nil {
		return nil, err
	}
	if err := sys.Connectors.Register(apps.NewShellConnector()); err != nil {
		return nil, err
	}
	ex, err := apps.NewExecutor(db, sys.Storage, sys.Connectors, sys.Workflows, sys.Tasks)
	if err != nil {
		return nil, err
	}
	sys.Executor = ex
	if !opts.DisableSearch {
		sys.Search = search.New(rg)
	}
	return sys, nil
}

// MustNew builds a system and panics on wiring errors; for examples and
// benchmarks where wiring cannot legitimately fail.
func MustNew(opts Options) *System {
	sys, err := New(opts)
	if err != nil {
		panic(err)
	}
	return sys
}

// Update runs fn in a read-write transaction on the system store.
func (sys *System) Update(fn func(tx *store.Tx) error) error {
	return sys.Store.Update(fn)
}

// View runs fn in a read-only transaction on the system store.
func (sys *System) View(fn func(tx *store.Tx) error) error {
	return sys.Store.View(fn)
}
