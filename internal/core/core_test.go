package core

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/events"
	"repro/internal/importer"
	"repro/internal/model"
	"repro/internal/provider"
	"repro/internal/store"
	"repro/internal/tasks"
	"repro/internal/workflow"
)

// TestSection2DemoScenario replays the paper's full demonstration: a
// scientist works on Arabidopsis thaliana, registers samples and extracts
// (creating a misspelled annotation along the way), imports instrument
// data, runs a two-group analysis experiment, and inspects the results —
// while the expert reviews and merges annotations and the audit log records
// everything.
func TestSection2DemoScenario(t *testing.T) {
	sys := MustNew(Options{})

	// --- setup: people, project, instrument --------------------------------
	samples := []string{"AT-1-control", "AT-2-control", "AT-1-treated", "AT-2-treated"}
	gp, gpStore := provider.NewAffymetrixGeneChip("genechip", samples)
	sys.Storage.Mount(gpStore)
	if err := sys.Providers.Register(gp); err != nil {
		t.Fatal(err)
	}

	var project, alice, appID int64
	err := sys.Update(func(tx *store.Tx) error {
		org, err := sys.DB.CreateOrganization(tx, "setup", model.Organization{Name: "UZH", Country: "CH"})
		if err != nil {
			return err
		}
		inst, err := sys.DB.CreateInstitute(tx, "setup", model.Institute{Name: "FGCZ", Organization: org})
		if err != nil {
			return err
		}
		alice, err = sys.DB.CreateUser(tx, "setup", model.User{
			Login: "alice", Role: model.RoleScientist, Institute: inst, Active: true,
		})
		if err != nil {
			return err
		}
		if _, err := sys.DB.CreateUser(tx, "setup", model.User{
			Login: "eva", Role: model.RoleExpert, Institute: inst, Active: true,
		}); err != nil {
			return err
		}
		project, err = sys.DB.CreateProject(tx, "setup", model.Project{
			Name: "p1000", Members: []int64{alice}, Institute: inst, Area: "genomics",
		})
		if err != nil {
			return err
		}
		appID, err = sys.DB.CreateApplication(tx, "setup", model.Application{
			Name: "two group analysis", Connector: "rserve", Program: "twogroup.R",
			InputSpec: []string{"resources"}, ParamSpec: []string{"reference_group"},
			Active: true,
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	// --- Figures 2-3: register samples and extracts, with annotations ------
	var sampleID int64
	var extractIDs []int64
	err = sys.Update(func(tx *store.Tx) error {
		// Alice creates a new disease-state annotation "Hopeless".
		if _, err := sys.Vocab.AddTerm(tx, "alice", model.VocabDiseaseState, "Hopeless", false); err != nil {
			return err
		}
		sampleID, err = sys.DB.CreateSample(tx, "alice", model.Sample{
			Name: "AT-pool", Project: project, Owner: alice,
			Species: "Arabidopsis thaliana", DiseaseState: "Hopeless",
			Treatment: "Light",
		})
		if err != nil {
			return err
		}
		for _, name := range samples {
			eid, err := sys.DB.CreateExtract(tx, "alice", model.Extract{
				Name: name, Sample: sampleID, ExtractionMethod: "TRIzol",
			})
			if err != nil {
				return err
			}
			extractIDs = append(extractIDs, eid)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// --- Figures 4-8: another scientist misspells, expert merges -----------
	err = sys.Update(func(tx *store.Tx) error {
		if _, err := sys.Vocab.AddTerm(tx, "bob", model.VocabDiseaseState, "Hopeles", false); err != nil {
			return err
		}
		// Bob annotates a sample with the misspelling.
		_, err := sys.DB.CreateSample(tx, "bob", model.Sample{
			Name: "AT-bob", Project: project, DiseaseState: "Hopeles",
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// The expert's task list (Figure 8) holds two release tasks.
	err = sys.View(func(tx *store.Tx) error {
		open, err := sys.Tasks.ListOpen(tx, "", "expert")
		if err != nil {
			return err
		}
		if len(open) != 2 {
			t.Fatalf("expert task list = %+v", open)
		}
		// The system recommends merging the misspelling (Figure 5).
		recs, err := sys.Vocab.Recommendations(tx)
		if err != nil {
			return err
		}
		if len(recs) == 0 {
			t.Fatal("no merge recommendations")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Eva merges Hopeles into Hopeless (Figures 6-7).
	err = sys.Update(func(tx *store.Tx) error {
		keep, err := sys.Vocab.Lookup(tx, model.VocabDiseaseState, "Hopeless")
		if err != nil {
			return err
		}
		drop, err := sys.Vocab.Lookup(tx, model.VocabDiseaseState, "Hopeles")
		if err != nil {
			return err
		}
		res, err := sys.Vocab.Merge(tx, "eva", keep.ID, drop.ID, "")
		if err != nil {
			return err
		}
		if res.Reassociated[model.KindSample] != 1 {
			t.Errorf("reassociated = %v", res.Reassociated)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// --- Figures 9-11: import from the GeneChip, assign extracts -----------
	var imp importer.Result
	err = sys.Update(func(tx *store.Tx) error {
		imp, err = sys.Importer.Import(tx, importer.Request{
			Provider: "genechip", Mode: importer.Copy,
			WorkunitName: "GeneChip import", Project: project,
			Owner: alice, Actor: "alice",
		})
		if err != nil {
			return err
		}
		matches, err := sys.Importer.BestMatches(tx, imp.Workunit)
		if err != nil {
			return err
		}
		if len(matches) != 4 {
			t.Fatalf("matches = %+v", matches)
		}
		if err := sys.Importer.ApplyMatches(tx, "alice", matches); err != nil {
			return err
		}
		return sys.Importer.CompleteImport(tx, "alice", imp.WorkflowInstance)
	})
	if err != nil {
		t.Fatal(err)
	}

	// --- Figures 13-16: define and run the experiment ----------------------
	var expID int64
	var run apps.RunResult
	err = sys.Update(func(tx *store.Tx) error {
		expID, err = sys.DB.CreateExperiment(tx, "alice", model.Experiment{
			Name: "AT light effect", Project: project, Owner: alice,
			Resources: imp.Resources, Samples: []int64{sampleID},
			Extracts:   extractIDs,
			Attributes: map[string]string{"species": "Arabidopsis thaliana", "treatment": "light"},
		})
		if err != nil {
			return err
		}
		run, err = sys.Executor.RunExperiment(tx, apps.RunRequest{
			Experiment: expID, Application: appID,
			WorkunitName: "AT light results",
			Params:       map[string]string{"reference_group": "control"},
			Actor:        "alice", Owner: alice,
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.Failed {
		t.Fatalf("experiment failed: %s", run.Error)
	}

	// Results ready, zip downloadable (Figure 16).
	err = sys.View(func(tx *store.Tx) error {
		wu, err := sys.DB.GetWorkunit(tx, run.Workunit)
		if err != nil {
			return err
		}
		if wu.State != model.WorkunitReady {
			t.Errorf("workunit state = %q", wu.State)
		}
		inst, _ := sys.Workflows.Get(tx, run.WorkflowInstance)
		if inst.State != workflow.StateCompleted {
			t.Errorf("workflow state = %q", inst.State)
		}
		rs, _ := sys.DB.ResourcesOfWorkunit(tx, run.Workunit)
		var zipFound, reportFound bool
		for _, r := range rs {
			switch r.Name {
			case "results.zip":
				zipFound = true
				data, err := sys.Storage.Open(r.URI)
				if err != nil {
					return err
				}
				names, err := apps.ReadZip(data)
				if err != nil {
					return err
				}
				if len(names) != 2 {
					t.Errorf("zip contents = %v", names)
				}
			case "report.txt":
				reportFound = true
			}
		}
		if !zipFound || !reportFound {
			t.Error("result files missing")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// --- full-text search over everything -----------------------------------
	hits, err := sys.Search.Search("alice", "arabidopsis")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Error("search found nothing for arabidopsis")
	}
	// The analysis report content is searchable.
	hits, err = sys.Search.Search("alice", "differential")
	if err != nil {
		t.Fatal(err)
	}
	foundReport := false
	for _, h := range hits {
		if h.Kind == model.KindDataResource {
			foundReport = true
		}
	}
	if !foundReport {
		t.Errorf("report not searchable: %+v", hits)
	}

	// --- networked browsing --------------------------------------------------
	err = sys.View(func(tx *store.Tx) error {
		out, in, err := sys.Registry.Neighbors(tx, model.KindSample, sampleID)
		if err != nil {
			return err
		}
		if len(out) == 0 || len(in) == 0 {
			t.Errorf("sample neighbors: out=%d in=%d", len(out), len(in))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// --- audit log -------------------------------------------------------------
	err = sys.View(func(tx *store.Tx) error {
		entries, err := sys.Audit.ByActor(tx, "alice")
		if err != nil {
			return err
		}
		if len(entries) < 5 {
			t.Errorf("alice audit entries = %d", len(entries))
		}
		byObj, err := sys.Audit.ByObject(tx, model.KindSample, sampleID)
		if err != nil {
			return err
		}
		if len(byObj) == 0 {
			t.Error("sample has no audit trail")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// No stray open tasks for the expert (annotation work done) and none
	// for alice (import completed).
	_ = sys.View(func(tx *store.Tx) error {
		open, _ := sys.Tasks.ListOpen(tx, "alice", "expert")
		for _, tk := range open {
			if tk.Type == tasks.TypeReleaseAnnotation || tk.Type == tasks.TypeAssignExtracts {
				t.Errorf("unexpected open task: %+v", tk)
			}
		}
		return nil
	})
}

// TestSystemPersistenceRoundTrip saves a populated system store and loads
// it into a fresh one.
func TestSystemPersistenceRoundTrip(t *testing.T) {
	sys := MustNew(Options{})
	var project int64
	err := sys.Update(func(tx *store.Tx) error {
		var err error
		project, err = sys.DB.CreateProject(tx, "x", model.Project{Name: "persisted"})
		if err != nil {
			return err
		}
		_, err = sys.DB.CreateSample(tx, "x", model.Sample{Name: "s", Project: project})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	bw := &writerAdapter{b: &buf}
	if err := sys.Store.Save(bw); err != nil {
		t.Fatal(err)
	}
	// A fresh store loads the snapshot; wiring a registry over it works
	// because index creation is marker-guarded.
	s2 := store.New()
	if err := s2.Load(strings.NewReader(buf.String())); err != nil {
		t.Fatal(err)
	}
	if s2.Count(model.KindSample) != 1 || s2.Count(model.KindProject) != 1 {
		t.Error("loaded store missing records")
	}
}

type writerAdapter struct{ b *strings.Builder }

func (w *writerAdapter) Write(p []byte) (int, error) { return w.b.Write(p) }

func TestOptionsDisableSubsystems(t *testing.T) {
	sys := MustNew(Options{DisableSearch: true, DisableAudit: true})
	if sys.Search != nil || sys.Audit != nil {
		t.Error("disabled subsystems present")
	}
	full := MustNew(Options{})
	if full.Search == nil || full.Audit == nil {
		t.Error("default subsystems missing")
	}
}

func TestVocabEnforcementHelper(t *testing.T) {
	// The system exposes vocabulary validation for the portal: creating a
	// sample with an unknown term is the portal's job to reject; verify
	// the check primitive.
	sys := MustNew(Options{})
	_ = sys.Update(func(tx *store.Tx) error {
		_, err := sys.Vocab.AddTerm(tx, "eva", model.VocabSpecies, "Known species", true)
		return err
	})
	_ = sys.View(func(tx *store.Tx) error {
		if !sys.Vocab.Exists(tx, model.VocabSpecies, "known species") {
			t.Error("known term rejected")
		}
		if sys.Vocab.Exists(tx, model.VocabSpecies, "Unknown") {
			t.Error("unknown term accepted")
		}
		return nil
	})
}

// TestDurableSystemRecovery proves the full stack over the durable write
// path: a system wired on a data directory commits domain entities through
// the WAL, is shut down (cleanly here; the hard-kill variant lives in
// internal/store), and a second system wired on the same directory
// recovers every entity with schema, unique indexes and serial ids intact.
func TestDurableSystemRecovery(t *testing.T) {
	dir := t.TempDir()
	opts := Options{DataDir: dir, Sync: store.SyncAlways, SnapshotEvery: -1}
	sys, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	var alice, project int64
	err = sys.Update(func(tx *store.Tx) error {
		org, err := sys.DB.CreateOrganization(tx, "t", model.Organization{Name: "UZH", Country: "CH"})
		if err != nil {
			return err
		}
		inst, err := sys.DB.CreateInstitute(tx, "t", model.Institute{Name: "FGCZ", Organization: org})
		if err != nil {
			return err
		}
		alice, err = sys.DB.CreateUser(tx, "t", model.User{Login: "alice", Role: model.RoleScientist, Institute: inst, Active: true})
		if err != nil {
			return err
		}
		project, err = sys.DB.CreateProject(tx, "t", model.Project{Name: "p1000", Members: []int64{alice}})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	err = sys.Update(func(tx *store.Tx) error {
		_, err := sys.DB.CreateSample(tx, "alice", model.Sample{Name: "AT-1", Project: project})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	sys2, err := New(opts)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer sys2.Close()
	err = sys2.View(func(tx *store.Tx) error {
		u, err := sys2.DB.UserByLogin(tx, "alice")
		if err != nil {
			return err
		}
		if u.ID != alice {
			t.Errorf("recovered alice id %d, want %d", u.ID, alice)
		}
		p, err := sys2.DB.GetProject(tx, project)
		if err != nil {
			return err
		}
		if len(p.Members) != 1 || p.Members[0] != alice {
			t.Errorf("recovered project members %v", p.Members)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The rebuilt unique index on user.login still rejects duplicates.
	err = sys2.Update(func(tx *store.Tx) error {
		_, err := sys2.DB.CreateUser(tx, "t", model.User{Login: "alice", Active: true})
		return err
	})
	if err == nil {
		t.Error("duplicate login accepted after recovery")
	}
	// New writes keep flowing through the recovered WAL.
	err = sys2.Update(func(tx *store.Tx) error {
		_, err := sys2.DB.CreateSample(tx, "alice", model.Sample{Name: "AT-2", Project: project})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBatchCreateCoalescedFanout pins the coalesced event contract for
// bulk registration: one batch publication reaches the bus per
// BatchCreate call, audit still records one entry per created entity in
// the same transaction, and the search index picks up every entity of
// the batch.
func TestBatchCreateCoalescedFanout(t *testing.T) {
	sys := MustNew(Options{})

	var publications, itemsSeen int
	sys.Bus.Subscribe("sample.created", func(ev events.Event) error {
		publications++
		itemsSeen += len(ev.Items)
		return nil
	})

	var project int64
	var ids []int64
	err := sys.Update(func(tx *store.Tx) error {
		var err error
		project, err = sys.DB.CreateProject(tx, "setup", model.Project{Name: "pbatch"})
		if err != nil {
			return err
		}
		ids, err = sys.DB.BatchCreateSamples(tx, "alice", model.Sample{
			Project: project, Species: "Arabidopsis thaliana",
		}, "bulk", 25)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 25 {
		t.Fatalf("created %d samples, want 25", len(ids))
	}
	if publications != 1 {
		t.Errorf("sample.created published %d times for one batch, want 1", publications)
	}
	if itemsSeen != 25 {
		t.Errorf("batch event carried %d items, want 25", itemsSeen)
	}

	// Audit: one entry per entity, inserted inside the same transaction.
	err = sys.View(func(tx *store.Tx) error {
		es, err := sys.Audit.ByActor(tx, "alice")
		if err != nil {
			return err
		}
		n := 0
		for _, e := range es {
			if e.Kind == model.KindSample && e.Topic == "sample.created" {
				n++
			}
		}
		if n != 25 {
			t.Errorf("audit logged %d sample.created entries, want 25", n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Search: every batched document is indexed.
	hits, err := sys.Search.Search("", "arabidopsis kind:sample")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 25 {
		t.Errorf("search found %d batched samples, want 25", len(hits))
	}

	// A mid-batch failure aborts the whole batch with no event published.
	publications, itemsSeen = 0, 0
	err = sys.Update(func(tx *store.Tx) error {
		_, err := sys.DB.BatchCreateSamples(tx, "alice", model.Sample{
			Project: 99999, // dangling ref fails validation
		}, "bad", 3)
		if err == nil {
			t.Error("batch with dangling project ref succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if publications != 0 {
		t.Errorf("failed batch still published %d events", publications)
	}
}
