package entity

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/events"
	"repro/internal/store"
)

// TestQuickLinkGraphConsistency: after any random sequence of creates,
// reference updates and deletes, the link table agrees exactly with the
// reference fields of the live records, in both directions.
func TestQuickLinkGraphConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rg := NewRegistry(store.New(), events.NewBus())
		if err := rg.Register(Kind{
			Name: "node",
			Fields: []Field{
				{Name: "name", Type: String, Required: true},
				{Name: "parent", Type: Ref, RefKind: "node"},
				{Name: "peers", Type: RefList, RefKind: "node"},
			},
		}); err != nil {
			return false
		}
		var live []int64
		for op := 0; op < 60; op++ {
			switch rng.Intn(4) {
			case 0, 1: // create, possibly with references
				_ = rg.Store().Update(func(tx *store.Tx) error {
					values := map[string]any{"name": fmt.Sprintf("n%d", op)}
					if len(live) > 0 && rng.Intn(2) == 0 {
						values["parent"] = live[rng.Intn(len(live))]
					}
					if len(live) > 1 && rng.Intn(2) == 0 {
						values["peers"] = []int64{
							live[rng.Intn(len(live))], live[rng.Intn(len(live))],
						}
					}
					id, err := rg.Create(tx, "node", "q", values)
					if err != nil {
						return nil
					}
					live = append(live, id)
					return nil
				})
			case 2: // rewire a random node
				if len(live) == 0 {
					continue
				}
				target := live[rng.Intn(len(live))]
				_ = rg.Store().Update(func(tx *store.Tx) error {
					values := map[string]any{}
					if rng.Intn(2) == 0 {
						values["parent"] = live[rng.Intn(len(live))]
					} else {
						values["parent"] = int64(0) // clear
					}
					return rg.Update(tx, "node", target, "q", values)
				})
			case 3: // delete an unreferenced node (Delete refuses otherwise)
				if len(live) == 0 {
					continue
				}
				idx := rng.Intn(len(live))
				id := live[idx]
				err := rg.Store().Update(func(tx *store.Tx) error {
					return rg.Delete(tx, "node", id, "q")
				})
				if err == nil {
					live = append(live[:idx], live[idx+1:]...)
				}
			}
		}
		// Verify: for every live record, Outgoing matches its fields, and
		// every outgoing edge appears in the target's Incoming.
		ok := true
		_ = rg.Store().View(func(tx *store.Tx) error {
			return tx.Scan("node", func(r store.Record) bool {
				want := map[string]int{}
				if p := r.Int("parent"); p != 0 {
					want[fmt.Sprintf("parent->%d", p)]++
				}
				for _, p := range r.IDs("peers") {
					if p != 0 {
						want[fmt.Sprintf("peers->%d", p)]++
					}
				}
				out, err := rg.Outgoing(tx, "node", r.ID())
				if err != nil {
					ok = false
					return false
				}
				got := map[string]int{}
				for _, e := range out {
					got[fmt.Sprintf("%s->%d", e.Field, e.ToID)]++
					// Reverse direction contains this edge.
					in, err := rg.Incoming(tx, "node", e.ToID)
					if err != nil {
						ok = false
						return false
					}
					found := false
					for _, ie := range in {
						if ie.FromID == r.ID() && ie.Field == e.Field {
							found = true
							break
						}
					}
					if !found {
						ok = false
						return false
					}
				}
				if len(got) != len(want) {
					ok = false
					return false
				}
				for k, n := range want {
					if got[k] != n {
						ok = false
						return false
					}
				}
				return true
			})
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
