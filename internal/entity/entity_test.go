package entity

import (
	"errors"
	"testing"
	"time"

	"repro/internal/events"
	"repro/internal/store"
)

func testRegistry(t *testing.T) *Registry {
	t.Helper()
	rg := NewRegistry(store.New(), events.NewBus())
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(rg.Register(Kind{
		Name: "project",
		Fields: []Field{
			{Name: "name", Type: String, Required: true, Unique: true},
		},
	}))
	must(rg.Register(Kind{
		Name: "sample",
		Fields: []Field{
			{Name: "name", Type: String, Required: true, Indexed: true},
			{Name: "project", Type: Ref, RefKind: "project", Required: true},
			{Name: "species", Type: String},
			{Name: "age", Type: Int},
			{Name: "purity", Type: Float},
			{Name: "frozen", Type: Bool},
			{Name: "collected", Type: Time},
			{Name: "tags", Type: StringList},
			{Name: "related", Type: RefList, RefKind: "sample"},
			{Name: "notes", Type: Text},
		},
	}))
	return rg
}

func createProject(t *testing.T, rg *Registry, name string) int64 {
	t.Helper()
	var id int64
	err := rg.Store().Update(func(tx *store.Tx) error {
		var err error
		id, err = rg.Create(tx, "project", "tester", map[string]any{"name": name})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestCreateAndGet(t *testing.T) {
	rg := testRegistry(t)
	pid := createProject(t, rg, "p1000")
	var sid int64
	err := rg.Store().Update(func(tx *store.Tx) error {
		var err error
		sid, err = rg.Create(tx, "sample", "alice", map[string]any{
			"name": "arabidopsis-1", "project": pid, "species": "A. thaliana",
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = rg.Store().View(func(tx *store.Tx) error {
		r, err := rg.Get(tx, "sample", sid)
		if err != nil {
			t.Fatal(err)
		}
		if r.String("name") != "arabidopsis-1" || r.Int("project") != pid {
			t.Errorf("record = %v", r)
		}
		if r.Time("created").IsZero() || r.Time("modified").IsZero() {
			t.Error("timestamps not set")
		}
		return nil
	})
}

func TestCreateUnknownKind(t *testing.T) {
	rg := testRegistry(t)
	err := rg.Store().Update(func(tx *store.Tx) error {
		_, err := rg.Create(tx, "nope", "x", nil)
		return err
	})
	if !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("got %v, want ErrUnknownKind", err)
	}
}

func TestCreateUnknownField(t *testing.T) {
	rg := testRegistry(t)
	pid := createProject(t, rg, "p")
	err := rg.Store().Update(func(tx *store.Tx) error {
		_, err := rg.Create(tx, "sample", "x", map[string]any{
			"name": "s", "project": pid, "bogus": "v",
		})
		return err
	})
	if !errors.Is(err, ErrUnknownField) {
		t.Fatalf("got %v, want ErrUnknownField", err)
	}
}

func TestCreateWrongType(t *testing.T) {
	rg := testRegistry(t)
	pid := createProject(t, rg, "p")
	cases := []map[string]any{
		{"name": int64(5), "project": pid},
		{"name": "s", "project": "not-an-id"},
		{"name": "s", "project": pid, "age": "old"},
		{"name": "s", "project": pid, "purity": int64(1)},
		{"name": "s", "project": pid, "frozen": "yes"},
		{"name": "s", "project": pid, "collected": "2010-01-01"},
		{"name": "s", "project": pid, "tags": []int64{1}},
		{"name": "s", "project": pid, "related": []string{"a"}},
	}
	for i, values := range cases {
		err := rg.Store().Update(func(tx *store.Tx) error {
			_, err := rg.Create(tx, "sample", "x", values)
			return err
		})
		if !errors.Is(err, ErrWrongType) {
			t.Errorf("case %d: got %v, want ErrWrongType", i, err)
		}
	}
}

func TestRequiredFields(t *testing.T) {
	rg := testRegistry(t)
	pid := createProject(t, rg, "p")
	for i, values := range []map[string]any{
		{"project": pid},             // name missing
		{"name": "", "project": pid}, // name zero
		{"name": "s"},                // project missing
	} {
		err := rg.Store().Update(func(tx *store.Tx) error {
			_, err := rg.Create(tx, "sample", "x", values)
			return err
		})
		if !errors.Is(err, ErrRequired) {
			t.Errorf("case %d: got %v, want ErrRequired", i, err)
		}
	}
}

func TestDanglingRefRejected(t *testing.T) {
	rg := testRegistry(t)
	err := rg.Store().Update(func(tx *store.Tx) error {
		_, err := rg.Create(tx, "sample", "x", map[string]any{
			"name": "s", "project": int64(999),
		})
		return err
	})
	if !errors.Is(err, ErrDanglingRef) {
		t.Fatalf("got %v, want ErrDanglingRef", err)
	}
}

func TestDanglingRefListRejected(t *testing.T) {
	rg := testRegistry(t)
	pid := createProject(t, rg, "p")
	err := rg.Store().Update(func(tx *store.Tx) error {
		_, err := rg.Create(tx, "sample", "x", map[string]any{
			"name": "s", "project": pid, "related": []int64{12345},
		})
		return err
	})
	if !errors.Is(err, ErrDanglingRef) {
		t.Fatalf("got %v, want ErrDanglingRef", err)
	}
}

func TestUpdatePartial(t *testing.T) {
	rg := testRegistry(t)
	pid := createProject(t, rg, "p")
	var sid int64
	_ = rg.Store().Update(func(tx *store.Tx) error {
		sid, _ = rg.Create(tx, "sample", "x", map[string]any{
			"name": "s", "project": pid, "species": "original",
		})
		return nil
	})
	err := rg.Store().Update(func(tx *store.Tx) error {
		return rg.Update(tx, "sample", sid, "x", map[string]any{"age": int64(3)})
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = rg.Store().View(func(tx *store.Tx) error {
		r, _ := rg.Get(tx, "sample", sid)
		if r.String("species") != "original" || r.Int("age") != 3 {
			t.Errorf("partial update broke record: %v", r)
		}
		return nil
	})
}

func TestDeleteBlockedWhileReferenced(t *testing.T) {
	rg := testRegistry(t)
	pid := createProject(t, rg, "p")
	_ = rg.Store().Update(func(tx *store.Tx) error {
		_, err := rg.Create(tx, "sample", "x", map[string]any{"name": "s", "project": pid})
		return err
	})
	err := rg.Store().Update(func(tx *store.Tx) error {
		return rg.Delete(tx, "project", pid, "x")
	})
	if !errors.Is(err, ErrReferenced) {
		t.Fatalf("got %v, want ErrReferenced", err)
	}
}

func TestDeleteAfterReferrerRemoved(t *testing.T) {
	rg := testRegistry(t)
	pid := createProject(t, rg, "p")
	var sid int64
	_ = rg.Store().Update(func(tx *store.Tx) error {
		sid, _ = rg.Create(tx, "sample", "x", map[string]any{"name": "s", "project": pid})
		return nil
	})
	err := rg.Store().Update(func(tx *store.Tx) error {
		if err := rg.Delete(tx, "sample", sid, "x"); err != nil {
			return err
		}
		return rg.Delete(tx, "project", pid, "x")
	})
	if err != nil {
		t.Fatal(err)
	}
	if rg.Store().Count("project") != 0 || rg.Store().Count("sample") != 0 {
		t.Error("entities survived delete")
	}
}

func TestLinkGraphBidirectional(t *testing.T) {
	rg := testRegistry(t)
	pid := createProject(t, rg, "p")
	var s1, s2 int64
	_ = rg.Store().Update(func(tx *store.Tx) error {
		s1, _ = rg.Create(tx, "sample", "x", map[string]any{"name": "s1", "project": pid})
		var err error
		s2, err = rg.Create(tx, "sample", "x", map[string]any{
			"name": "s2", "project": pid, "related": []int64{s1},
		})
		return err
	})
	_ = rg.Store().View(func(tx *store.Tx) error {
		out, in, err := rg.Neighbors(tx, "sample", s1)
		if err != nil {
			t.Fatal(err)
		}
		// s1 points at the project; s2 points at s1.
		if len(out) != 1 || out[0].ToKind != "project" || out[0].ToID != pid {
			t.Errorf("outgoing = %+v", out)
		}
		if len(in) != 1 || in[0].FromID != s2 || in[0].Field != "related" {
			t.Errorf("incoming = %+v", in)
		}
		// Project sees both samples inbound.
		_, pin, _ := rg.Neighbors(tx, "project", pid)
		if len(pin) != 2 {
			t.Errorf("project incoming = %+v", pin)
		}
		return nil
	})
}

func TestLinksFollowUpdates(t *testing.T) {
	rg := testRegistry(t)
	p1 := createProject(t, rg, "p1")
	p2 := createProject(t, rg, "p2")
	var sid int64
	_ = rg.Store().Update(func(tx *store.Tx) error {
		sid, _ = rg.Create(tx, "sample", "x", map[string]any{"name": "s", "project": p1})
		return nil
	})
	_ = rg.Store().Update(func(tx *store.Tx) error {
		return rg.Update(tx, "sample", sid, "x", map[string]any{"project": p2})
	})
	_ = rg.Store().View(func(tx *store.Tx) error {
		_, in1, _ := rg.Neighbors(tx, "project", p1)
		_, in2, _ := rg.Neighbors(tx, "project", p2)
		if len(in1) != 0 {
			t.Errorf("old project still has inbound links: %+v", in1)
		}
		if len(in2) != 1 {
			t.Errorf("new project missing inbound link: %+v", in2)
		}
		return nil
	})
}

func TestReferrerIDs(t *testing.T) {
	rg := testRegistry(t)
	pid := createProject(t, rg, "p")
	want := make(map[int64]bool)
	_ = rg.Store().Update(func(tx *store.Tx) error {
		for i := 0; i < 3; i++ {
			id, _ := rg.Create(tx, "sample", "x", map[string]any{
				"name": "s", "project": pid,
			})
			want[id] = true
		}
		return nil
	})
	_ = rg.Store().View(func(tx *store.Tx) error {
		ids, err := rg.ReferrerIDs(tx, "project", pid, "sample", "project")
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != 3 {
			t.Errorf("ReferrerIDs = %v", ids)
		}
		for _, id := range ids {
			if !want[id] {
				t.Errorf("unexpected referrer %d", id)
			}
		}
		return nil
	})
}

func TestEventsPublished(t *testing.T) {
	rg := testRegistry(t)
	var topics []string
	rg.Bus().Subscribe("", func(ev events.Event) error {
		topics = append(topics, ev.Topic)
		return nil
	})
	pid := createProject(t, rg, "p")
	var sid int64
	_ = rg.Store().Update(func(tx *store.Tx) error {
		sid, _ = rg.Create(tx, "sample", "alice", map[string]any{"name": "s", "project": pid})
		return nil
	})
	_ = rg.Store().Update(func(tx *store.Tx) error {
		return rg.Update(tx, "sample", sid, "alice", map[string]any{"age": int64(1)})
	})
	_ = rg.Store().Update(func(tx *store.Tx) error {
		return rg.Delete(tx, "sample", sid, "alice")
	})
	want := []string{"project.created", "sample.created", "sample.updated", "sample.deleted"}
	if len(topics) != len(want) {
		t.Fatalf("topics = %v, want %v", topics, want)
	}
	for i := range want {
		if topics[i] != want[i] {
			t.Fatalf("topics = %v, want %v", topics, want)
		}
	}
}

func TestRegisterValidation(t *testing.T) {
	rg := NewRegistry(store.New(), events.NewBus())
	if err := rg.Register(Kind{Name: ""}); err == nil {
		t.Error("empty kind name accepted")
	}
	if err := rg.Register(Kind{Name: "a", Fields: []Field{{Name: "id", Type: String}}}); err == nil {
		t.Error("reserved field name accepted")
	}
	if err := rg.Register(Kind{Name: "b", Fields: []Field{
		{Name: "x", Type: String}, {Name: "x", Type: Int},
	}}); err == nil {
		t.Error("duplicate field accepted")
	}
	if err := rg.Register(Kind{Name: "c", Fields: []Field{
		{Name: "r", Type: Ref},
	}}); err == nil {
		t.Error("ref without RefKind accepted")
	}
	if err := rg.Register(Kind{Name: "ok", Fields: []Field{{Name: "x", Type: String}}}); err != nil {
		t.Fatal(err)
	}
	if err := rg.Register(Kind{Name: "ok"}); err == nil {
		t.Error("duplicate kind accepted")
	}
}

func TestUniqueFieldEnforced(t *testing.T) {
	rg := testRegistry(t)
	createProject(t, rg, "dup")
	err := rg.Store().Update(func(tx *store.Tx) error {
		_, err := rg.Create(tx, "project", "x", map[string]any{"name": "dup"})
		return err
	})
	if !errors.Is(err, store.ErrUnique) {
		t.Fatalf("got %v, want ErrUnique", err)
	}
}

func TestKindIntrospection(t *testing.T) {
	rg := testRegistry(t)
	k := rg.Kind("sample")
	if k == nil {
		t.Fatal("Kind(sample) = nil")
	}
	if f := k.Field("project"); f == nil || f.Type != Ref || f.RefKind != "project" {
		t.Errorf("Field(project) = %+v", f)
	}
	if k.Field("nope") != nil {
		t.Error("Field(nope) != nil")
	}
	names := k.FieldNames()
	if len(names) != 10 || names[0] != "name" {
		t.Errorf("FieldNames = %v", names)
	}
	kinds := rg.Kinds()
	if len(kinds) != 2 || kinds[0] != "project" || kinds[1] != "sample" {
		t.Errorf("Kinds = %v", kinds)
	}
}

func TestFieldTypeString(t *testing.T) {
	for ft, want := range map[FieldType]string{
		String: "string", Text: "text", Int: "int", Float: "float",
		Bool: "bool", Time: "time", Ref: "ref", RefList: "reflist",
		StringList: "stringlist", FieldType(99): "FieldType(99)",
	} {
		if got := ft.String(); got != want {
			t.Errorf("FieldType(%d).String() = %q, want %q", int(ft), got, want)
		}
	}
}

func TestParseLinkKey(t *testing.T) {
	k, id, ok := parseLinkKey("sample:42")
	if !ok || k != "sample" || id != 42 {
		t.Errorf("parseLinkKey = %q %d %v", k, id, ok)
	}
	if _, _, ok := parseLinkKey("no-colon"); ok {
		t.Error("malformed key accepted")
	}
	if _, _, ok := parseLinkKey("kind:notanumber"); ok {
		t.Error("non-numeric id accepted")
	}
}

func TestNowFuncUsed(t *testing.T) {
	rg := testRegistry(t)
	fixed := time.Date(2010, 3, 22, 0, 0, 0, 0, time.UTC)
	old := nowFunc
	nowFunc = func() time.Time { return fixed }
	defer func() { nowFunc = old }()
	pid := createProject(t, rg, "timed")
	_ = rg.Store().View(func(tx *store.Tx) error {
		r, _ := rg.Get(tx, "project", pid)
		if !r.Time("created").Equal(fixed) {
			t.Errorf("created = %v", r.Time("created"))
		}
		return nil
	})
}
