package entity

import (
	"sort"

	"repro/internal/store"
)

// LinkEdge is one edge of the entity link graph.
type LinkEdge struct {
	// FromKind/FromID identify the referring entity.
	FromKind string
	FromID   int64
	// Field is the reference field on the referring entity.
	Field string
	// ToKind/ToID identify the referenced entity.
	ToKind string
	ToID   int64
}

// Outgoing returns the entities that (kind,id) refers to, i.e. the edges
// following its reference fields, sorted deterministically.
func (rg *Registry) Outgoing(tx *store.Tx, kind string, id int64) ([]LinkEdge, error) {
	return rg.edges(tx, "from", kind, id)
}

// Incoming returns the entities referring to (kind,id) — the reverse
// direction that makes bidirectional browsing possible.
func (rg *Registry) Incoming(tx *store.Tx, kind string, id int64) ([]LinkEdge, error) {
	return rg.edges(tx, "to", kind, id)
}

func (rg *Registry) edges(tx *store.Tx, side, kind string, id int64) ([]LinkEdge, error) {
	key := linkKey(kind, id)
	ids, err := tx.Lookup(linksTable, side, key)
	if err != nil {
		return nil, err
	}
	out := make([]LinkEdge, 0, len(ids))
	for _, lid := range ids {
		// Zero-copy read: the edge struct is built from extracted values, so
		// the shared record is never retained or mutated.
		l, err := tx.GetRef(linksTable, lid)
		if err != nil {
			return nil, err
		}
		fk, fid, ok1 := parseLinkKey(l.String("from"))
		tk, tid, ok2 := parseLinkKey(l.String("to"))
		if !ok1 || !ok2 {
			continue
		}
		out = append(out, LinkEdge{
			FromKind: fk, FromID: fid, Field: l.String("field"),
			ToKind: tk, ToID: tid,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.FromKind != b.FromKind {
			return a.FromKind < b.FromKind
		}
		if a.FromID != b.FromID {
			return a.FromID < b.FromID
		}
		if a.Field != b.Field {
			return a.Field < b.Field
		}
		if a.ToKind != b.ToKind {
			return a.ToKind < b.ToKind
		}
		return a.ToID < b.ToID
	})
	return out, nil
}

// Neighbors returns both directions of the link graph around (kind,id):
// everything the entity references and everything referencing it. This is
// the primitive behind the portal's networked browse view.
func (rg *Registry) Neighbors(tx *store.Tx, kind string, id int64) (outgoing, incoming []LinkEdge, err error) {
	outgoing, err = rg.Outgoing(tx, kind, id)
	if err != nil {
		return nil, nil, err
	}
	incoming, err = rg.Incoming(tx, kind, id)
	if err != nil {
		return nil, nil, err
	}
	return outgoing, incoming, nil
}

// ReferrerIDs returns the ids of entities of fromKind whose reference field
// points at (kind,id). It is the common "find all samples of this project"
// navigation helper.
func (rg *Registry) ReferrerIDs(tx *store.Tx, kind string, id int64, fromKind, field string) ([]int64, error) {
	in, err := rg.Incoming(tx, kind, id)
	if err != nil {
		return nil, err
	}
	var out []int64
	seen := make(map[int64]bool)
	for _, e := range in {
		if e.FromKind == fromKind && (field == "" || e.Field == field) && !seen[e.FromID] {
			seen[e.FromID] = true
			out = append(out, e.FromID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}
