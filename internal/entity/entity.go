// Package entity provides the typed schema layer over the raw record store:
// entity kinds with field definitions, value validation, referential
// integrity, and the bidirectional link graph that backs B-Fabric's
// "networked" object browsing. It plays the role of the ORM in the original
// Java implementation.
package entity

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/events"
	"repro/internal/store"
)

// FieldType enumerates the value types an entity field can carry.
type FieldType int

const (
	// String is a short string value.
	String FieldType = iota
	// Text is a long, full-text-searchable string value.
	Text
	// Int is an int64 value.
	Int
	// Float is a float64 value.
	Float
	// Bool is a boolean value.
	Bool
	// Time is a time.Time value.
	Time
	// Ref is a reference (int64 id) to another entity.
	Ref
	// RefList is a list of references to other entities.
	RefList
	// StringList is a list of short strings.
	StringList
)

// String returns the human-readable name of the field type.
func (ft FieldType) String() string {
	switch ft {
	case String:
		return "string"
	case Text:
		return "text"
	case Int:
		return "int"
	case Float:
		return "float"
	case Bool:
		return "bool"
	case Time:
		return "time"
	case Ref:
		return "ref"
	case RefList:
		return "reflist"
	case StringList:
		return "stringlist"
	default:
		return fmt.Sprintf("FieldType(%d)", int(ft))
	}
}

// Field describes one attribute of an entity kind.
type Field struct {
	// Name is the attribute name (snake_case by convention).
	Name string
	// Type is the value type.
	Type FieldType
	// Required fields must be present and non-zero on create.
	Required bool
	// Unique fields get a unique index.
	Unique bool
	// Indexed fields get a secondary index.
	Indexed bool
	// RefKind names the target kind for Ref/RefList fields.
	RefKind string
	// Vocabulary names the controlled vocabulary constraining a String
	// field, if any. Enforcement happens at the service layer, which owns
	// the vocabulary store.
	Vocabulary string
}

// Kind describes an entity type: its name and attribute schema.
type Kind struct {
	// Name is the kind name (singular, lower case: "sample").
	Name string
	// Fields is the attribute schema.
	Fields []Field

	byName map[string]*Field
}

// Field returns the definition of the named field, or nil.
func (k *Kind) Field(name string) *Field {
	return k.byName[name]
}

// FieldNames returns the field names in schema order.
func (k *Kind) FieldNames() []string {
	out := make([]string, len(k.Fields))
	for i, f := range k.Fields {
		out[i] = f.Name
	}
	return out
}

// linksTable is the system table recording every reference edge so that
// objects can be browsed bidirectionally ("networked fashion").
const linksTable = "_links"

// Registry owns the set of registered kinds and mediates all entity
// mutations, maintaining validation, referential integrity, the link graph,
// and event publication.
type Registry struct {
	store *store.Store
	bus   *events.Bus
	kinds map[string]*Kind
}

// Sentinel errors for schema violations.
var (
	// ErrUnknownKind is returned for operations on unregistered kinds.
	ErrUnknownKind = errors.New("unknown entity kind")
	// ErrUnknownField is returned when a value targets no schema field.
	ErrUnknownField = errors.New("unknown field")
	// ErrWrongType is returned when a value has the wrong type for a field.
	ErrWrongType = errors.New("wrong value type")
	// ErrRequired is returned when a required field is missing or zero.
	ErrRequired = errors.New("required field missing")
	// ErrDanglingRef is returned when a reference targets a missing entity.
	ErrDanglingRef = errors.New("dangling reference")
	// ErrReferenced is returned when deleting an entity that others refer to.
	ErrReferenced = errors.New("entity is still referenced")
)

// NewRegistry creates a registry over the given store and bus.
func NewRegistry(s *store.Store, bus *events.Bus) *Registry {
	s.EnsureTable(linksTable)
	// The link table is hot on both endpoints.
	if !s.HasTable(linksTable + "_marker") {
		// CreateIndex is idempotent-hostile; guard with a marker table so a
		// registry can be rebuilt over a loaded store.
		_ = s.CreateIndex(linksTable, "from", false)
		_ = s.CreateIndex(linksTable, "to", false)
		s.EnsureTable(linksTable + "_marker")
	}
	return &Registry{store: s, bus: bus, kinds: make(map[string]*Kind)}
}

// Store returns the underlying record store.
func (rg *Registry) Store() *store.Store { return rg.store }

// Bus returns the event bus.
func (rg *Registry) Bus() *events.Bus { return rg.bus }

// Register adds a kind to the registry, creating its table and indexes.
// Registering the same kind name twice is an error.
func (rg *Registry) Register(k Kind) error {
	if k.Name == "" {
		return fmt.Errorf("entity: empty kind name")
	}
	if _, ok := rg.kinds[k.Name]; ok {
		return fmt.Errorf("entity: kind %q already registered", k.Name)
	}
	kind := k // copy
	kind.byName = make(map[string]*Field, len(kind.Fields))
	for i := range kind.Fields {
		f := &kind.Fields[i]
		if f.Name == "" || f.Name == store.IDField {
			return fmt.Errorf("entity: kind %q has invalid field name %q", k.Name, f.Name)
		}
		if _, dup := kind.byName[f.Name]; dup {
			return fmt.Errorf("entity: kind %q has duplicate field %q", k.Name, f.Name)
		}
		if (f.Type == Ref || f.Type == RefList) && f.RefKind == "" {
			return fmt.Errorf("entity: kind %q field %q: ref without RefKind", k.Name, f.Name)
		}
		kind.byName[f.Name] = f
	}
	rg.store.EnsureTable(kind.Name)
	for _, f := range kind.Fields {
		if f.Unique {
			if err := rg.store.CreateIndex(kind.Name, f.Name, true); err != nil && !errors.Is(err, store.ErrExists) {
				return err
			}
		} else if f.Indexed || f.Type == Ref {
			if err := rg.store.CreateIndex(kind.Name, f.Name, false); err != nil && !errors.Is(err, store.ErrExists) {
				return err
			}
		}
	}
	rg.kinds[kind.Name] = &kind
	return nil
}

// Kind returns the registered kind with the given name, or nil.
func (rg *Registry) Kind(name string) *Kind { return rg.kinds[name] }

// Kinds returns the sorted names of all registered kinds.
func (rg *Registry) Kinds() []string {
	out := make([]string, 0, len(rg.kinds))
	for n := range rg.kinds {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// checkValue validates a single field value against its definition.
func checkValue(f *Field, v any) error {
	switch f.Type {
	case String, Text:
		if _, ok := v.(string); !ok {
			return fmt.Errorf("field %q wants string, got %T: %w", f.Name, v, ErrWrongType)
		}
	case Int:
		if _, ok := v.(int64); !ok {
			return fmt.Errorf("field %q wants int64, got %T: %w", f.Name, v, ErrWrongType)
		}
	case Float:
		if _, ok := v.(float64); !ok {
			return fmt.Errorf("field %q wants float64, got %T: %w", f.Name, v, ErrWrongType)
		}
	case Bool:
		if _, ok := v.(bool); !ok {
			return fmt.Errorf("field %q wants bool, got %T: %w", f.Name, v, ErrWrongType)
		}
	case Time:
		if _, ok := v.(time.Time); !ok {
			return fmt.Errorf("field %q wants time.Time, got %T: %w", f.Name, v, ErrWrongType)
		}
	case Ref:
		if _, ok := v.(int64); !ok {
			return fmt.Errorf("field %q wants int64 ref, got %T: %w", f.Name, v, ErrWrongType)
		}
	case RefList:
		if _, ok := v.([]int64); !ok {
			return fmt.Errorf("field %q wants []int64, got %T: %w", f.Name, v, ErrWrongType)
		}
	case StringList:
		if _, ok := v.([]string); !ok {
			return fmt.Errorf("field %q wants []string, got %T: %w", f.Name, v, ErrWrongType)
		}
	}
	return nil
}

func isZero(f *Field, v any) bool {
	switch f.Type {
	case String, Text:
		return v.(string) == ""
	case Int, Ref:
		return v.(int64) == 0
	case Float:
		return v.(float64) == 0
	case Bool:
		return false // a false bool is a legitimate value
	case Time:
		return v.(time.Time).IsZero()
	case RefList:
		return len(v.([]int64)) == 0
	case StringList:
		return len(v.([]string)) == 0
	}
	return false
}

// validate checks the full value map for kind k. On create, required fields
// must be present; on update only present fields are checked.
func (rg *Registry) validate(tx *store.Tx, k *Kind, values map[string]any, create bool) error {
	for name, v := range values {
		f := k.Field(name)
		if f == nil {
			return fmt.Errorf("kind %q: field %q: %w", k.Name, name, ErrUnknownField)
		}
		if err := checkValue(f, v); err != nil {
			return fmt.Errorf("kind %q: %w", k.Name, err)
		}
	}
	if create {
		for i := range k.Fields {
			f := &k.Fields[i]
			if !f.Required {
				continue
			}
			v, ok := values[f.Name]
			if !ok || isZero(f, v) {
				return fmt.Errorf("kind %q: field %q: %w", k.Name, f.Name, ErrRequired)
			}
		}
	}
	// Referential integrity.
	for name, v := range values {
		f := k.Field(name)
		switch f.Type {
		case Ref:
			id := v.(int64)
			if id != 0 && !tx.Exists(f.RefKind, id) {
				return fmt.Errorf("kind %q field %q -> %s/%d: %w", k.Name, name, f.RefKind, id, ErrDanglingRef)
			}
		case RefList:
			for _, id := range v.([]int64) {
				if id != 0 && !tx.Exists(f.RefKind, id) {
					return fmt.Errorf("kind %q field %q -> %s/%d: %w", k.Name, name, f.RefKind, id, ErrDanglingRef)
				}
			}
		}
	}
	return nil
}

// linkKey encodes an entity endpoint as "kind:id" for the link table.
func linkKey(kind string, id int64) string {
	return kind + ":" + strconv.FormatInt(id, 10)
}

// parseLinkKey splits "kind:id" back into its parts.
func parseLinkKey(key string) (kind string, id int64, ok bool) {
	i := strings.LastIndexByte(key, ':')
	if i < 0 {
		return "", 0, false
	}
	id, err := strconv.ParseInt(key[i+1:], 10, 64)
	if err != nil {
		return "", 0, false
	}
	return key[:i], id, true
}

// syncLinks rewrites the outgoing link records of entity (kind,id) to match
// its current reference fields.
func (rg *Registry) syncLinks(tx *store.Tx, k *Kind, id int64, values store.Record) error {
	from := linkKey(k.Name, id)
	// Drop existing outgoing links.
	existing, err := tx.Lookup(linksTable, "from", from)
	if err != nil {
		return err
	}
	for _, lid := range existing {
		if err := tx.Delete(linksTable, lid); err != nil {
			return err
		}
	}
	// Recreate from the current state.
	for i := range k.Fields {
		f := &k.Fields[i]
		switch f.Type {
		case Ref:
			if tid := values.Int(f.Name); tid != 0 {
				if _, err := tx.Insert(linksTable, store.Record{
					"from": from, "to": linkKey(f.RefKind, tid), "field": f.Name,
				}); err != nil {
					return err
				}
			}
		case RefList:
			for _, tid := range values.IDs(f.Name) {
				if tid == 0 {
					continue
				}
				if _, err := tx.Insert(linksTable, store.Record{
					"from": from, "to": linkKey(f.RefKind, tid), "field": f.Name,
				}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// dropLinks removes all outgoing link records of entity (kind,id).
func (rg *Registry) dropLinks(tx *store.Tx, kind string, id int64) error {
	from := linkKey(kind, id)
	ids, err := tx.Lookup(linksTable, "from", from)
	if err != nil {
		return err
	}
	for _, lid := range ids {
		if err := tx.Delete(linksTable, lid); err != nil {
			return err
		}
	}
	return nil
}

// Create inserts a new entity of the given kind and returns its id. The
// actor is recorded in the published event.
func (rg *Registry) Create(tx *store.Tx, kind, actor string, values map[string]any) (int64, error) {
	k := rg.kinds[kind]
	if k == nil {
		return 0, fmt.Errorf("entity: %q: %w", kind, ErrUnknownKind)
	}
	if err := rg.validate(tx, k, values, true); err != nil {
		return 0, err
	}
	rec := make(store.Record, len(values)+2)
	for name, v := range values {
		rec[name] = v
	}
	rec["created"] = nowFunc()
	rec["modified"] = nowFunc()
	id, err := tx.Insert(kind, rec)
	if err != nil {
		return 0, err
	}
	if err := rg.syncLinks(tx, k, id, rec); err != nil {
		return 0, err
	}
	rg.publish(tx, kind+".created", kind, id, actor, values)
	return id, nil
}

// CreateBatch inserts one entity per value map, all of the given kind, and
// returns their ids in input order. The whole batch is validated, inserted
// and link-synced inside the caller's transaction, then published as ONE
// coalesced <kind>.created event carrying every (id, payload) item —
// subscribers fan in once per batch instead of once per entity, which is
// what keeps bulk registration's event cost O(1) per commit. Any failure
// aborts the batch with no event published; the caller's transaction
// rollback discards the partial writes.
func (rg *Registry) CreateBatch(tx *store.Tx, kind, actor string, values []map[string]any) ([]int64, error) {
	k := rg.kinds[kind]
	if k == nil {
		return nil, fmt.Errorf("entity: %q: %w", kind, ErrUnknownKind)
	}
	if len(values) == 0 {
		return nil, nil
	}
	now := nowFunc()
	ids := make([]int64, 0, len(values))
	items := make([]events.BatchItem, 0, len(values))
	for _, vals := range values {
		if err := rg.validate(tx, k, vals, true); err != nil {
			return nil, err
		}
		rec := make(store.Record, len(vals)+2)
		for name, v := range vals {
			rec[name] = v
		}
		rec["created"] = now
		rec["modified"] = now
		id, err := tx.Insert(kind, rec)
		if err != nil {
			return nil, err
		}
		if err := rg.syncLinks(tx, k, id, rec); err != nil {
			return nil, err
		}
		ids = append(ids, id)
		items = append(items, events.BatchItem{ID: id, Payload: vals})
	}
	if rg.bus != nil {
		rg.bus.Publish(events.Event{Topic: kind + ".created", Kind: kind, Actor: actor, Items: items, Tx: tx})
	}
	return ids, nil
}

// Update modifies the given fields of an existing entity, leaving other
// fields untouched.
func (rg *Registry) Update(tx *store.Tx, kind string, id int64, actor string, values map[string]any) error {
	k := rg.kinds[kind]
	if k == nil {
		return fmt.Errorf("entity: %q: %w", kind, ErrUnknownKind)
	}
	if err := rg.validate(tx, k, values, false); err != nil {
		return err
	}
	rec, err := tx.Get(kind, id)
	if err != nil {
		return err
	}
	for name, v := range values {
		rec[name] = v
	}
	rec["modified"] = nowFunc()
	if err := tx.Put(kind, id, rec); err != nil {
		return err
	}
	if err := rg.syncLinks(tx, k, id, rec); err != nil {
		return err
	}
	rg.publish(tx, kind+".updated", kind, id, actor, values)
	return nil
}

// UpdateCtx runs Update in its own optimistic transaction, retrying
// write conflicts with store.WithRetry. This is the right entry point
// when the caller holds no transaction and the target record is
// contended — concurrent annotators editing the same entity serialize by
// first-committer-wins instead of on the global writer mutex. Event
// subscribers fire once per attempt but write only through the attempt's
// transaction, so a rolled-back attempt leaks nothing.
func (rg *Registry) UpdateCtx(ctx context.Context, kind string, id int64, actor string, values map[string]any) error {
	return store.WithRetry(ctx, rg.store, func(tx *store.Tx) error {
		return rg.Update(tx, kind, id, actor, values)
	})
}

// Delete removes an entity. Deletion fails with ErrReferenced while other
// entities still link to it, preserving graph integrity.
func (rg *Registry) Delete(tx *store.Tx, kind string, id int64, actor string) error {
	k := rg.kinds[kind]
	if k == nil {
		return fmt.Errorf("entity: %q: %w", kind, ErrUnknownKind)
	}
	if !tx.Exists(kind, id) {
		return fmt.Errorf("entity: %s/%d: %w", kind, id, store.ErrNotFound)
	}
	to := linkKey(kind, id)
	inbound, err := tx.Lookup(linksTable, "to", to)
	if err != nil {
		return err
	}
	if len(inbound) > 0 {
		l, _ := tx.GetRef(linksTable, inbound[0])
		return fmt.Errorf("entity: %s/%d referenced by %s: %w", kind, id, l.String("from"), ErrReferenced)
	}
	if err := rg.dropLinks(tx, kind, id); err != nil {
		return err
	}
	if err := tx.Delete(kind, id); err != nil {
		return err
	}
	rg.publish(tx, kind+".deleted", kind, id, actor, nil)
	return nil
}

// Get returns a copy of the entity record, which the caller may mutate.
func (rg *Registry) Get(tx *store.Tx, kind string, id int64) (store.Record, error) {
	if _, ok := rg.kinds[kind]; !ok {
		return nil, fmt.Errorf("entity: %q: %w", kind, ErrUnknownKind)
	}
	return tx.Get(kind, id)
}

// GetRef returns the entity record without copying it. The store's aliasing
// contract applies: the record (including slice values) must be treated as
// read-only. Use it on read paths that only extract values.
func (rg *Registry) GetRef(tx *store.Tx, kind string, id int64) (store.Record, error) {
	if _, ok := rg.kinds[kind]; !ok {
		return nil, fmt.Errorf("entity: %q: %w", kind, ErrUnknownKind)
	}
	return tx.GetRef(kind, id)
}

func (rg *Registry) publish(tx *store.Tx, topic, kind string, id int64, actor string, values map[string]any) {
	if rg.bus == nil {
		return
	}
	rg.bus.Publish(events.Event{Topic: topic, Kind: kind, ID: id, Actor: actor, Payload: values, Tx: tx})
}

// nowFunc is replaceable for deterministic tests.
var nowFunc = func() time.Time { return time.Now().UTC() }
