// Package loadgen is B-Fabric's ISUCON-style HTTP load harness: it boots
// the portal over a real TCP listener, logs a pool of generated users in
// over HTTP, and drives a weighted mixed workload — browse, search,
// object reads, stats and task listings racing concurrent sample/extract/
// annotation writers — validating every response (status, JSON shape,
// pagination consistency, conditional-request semantics) while recording
// throughput and latency percentiles per operation class.
//
// Every number the harness reports is measured at the socket: requests
// travel through the kernel's TCP stack, net/http's connection handling,
// the portal's hardening stack and the JSON wire encoding, exactly as a
// production client's would. The in-process benchmarks stop at the Go
// API; this package scores the system the way a portal's users do.
package loadgen

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/genload"
	"repro/internal/model"
	"repro/internal/portal"
	"repro/internal/repl"
	"repro/internal/store"
)

// Config tunes one harness run. The zero value is completed by
// (*Config).withDefaults: a 10-second run at genload scale 0.1 with 16
// reader clients and 4 writers.
type Config struct {
	// Scale is the genload population factor relative to the paper's FGCZ
	// January-2010 deployment (1.0 = full scale).
	Scale float64
	// Clients is the number of concurrent reader clients.
	Clients int
	// Writers is the number of concurrent writer clients (sample/extract
	// registrations and annotation creations racing the readers).
	// Negative means none: a read-only run, where conditional requests
	// hit their validators and the 304 path carries the load.
	Writers int
	// Replicas, when positive, boots that many WAL-shipping read replicas
	// next to the primary (each with its own store, portal and TCP
	// socket). Readers are spread round-robin across the replica portals;
	// writers keep targeting the primary. Clients defaults to 16 per
	// serving instance so aggregate read throughput measures capacity, not
	// a fixed offered load split ever thinner.
	Replicas int
	// Duration is the measured wall time of the run.
	Duration time.Duration
	// Seed makes population generation and workload choice deterministic.
	Seed int64
	// Timeout bounds each HTTP request on the client side.
	Timeout time.Duration
	// Portal carries the serving limits of the booted portal.
	Portal portal.Config
	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

func (cfg Config) withDefaults() Config {
	if cfg.Scale == 0 {
		cfg.Scale = 0.1
	}
	if cfg.Replicas < 0 {
		cfg.Replicas = 0
	}
	if cfg.Clients == 0 {
		cfg.Clients = 16
		if cfg.Replicas > 0 {
			cfg.Clients = 16 * cfg.Replicas
		}
	}
	if cfg.Writers == 0 {
		cfg.Writers = 4
	} else if cfg.Writers < 0 {
		cfg.Writers = 0
	}
	if cfg.Duration == 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 10 * time.Second
	}
	return cfg
}

func (cfg Config) logf(format string, args ...any) {
	if cfg.Log != nil {
		fmt.Fprintf(cfg.Log, format+"\n", args...)
	}
}

// poolUser is one generated bench identity: its portal credentials and a
// project it is a member of (0 for experts/admins, who see everything and
// write into the first bench project).
type poolUser struct {
	login    string
	password string
	role     string
	project  int64
}

const poolPassword = "bench-pw"

// preparePool creates the harness's client identities on top of the
// genload population: dedicated bench users (a small share of experts and
// one admin, the rest scientists) spread over dedicated bench projects,
// each with a portal credential. Dedicated users keep the workload's
// access scope deterministic — every reader browses projects it is a
// member of, every writer registers into a project it can write to —
// regardless of how genload assigned its random memberships.
func preparePool(sys *core.System, n int) ([]poolUser, []int64, error) {
	if n < 1 {
		n = 1
	}
	nProjects := n/4 + 1
	users := make([]poolUser, n)
	projects := make([]int64, nProjects)
	err := sys.Update(func(tx *store.Tx) error {
		ids := make([]int64, n)
		for i := range users {
			role := model.RoleScientist
			switch {
			case i == 0:
				role = model.RoleAdmin
			case i%8 == 1:
				role = model.RoleExpert
			}
			u := poolUser{
				login:    fmt.Sprintf("bench%04d", i+1),
				password: poolPassword,
				role:     role,
			}
			id, err := sys.DB.CreateUser(tx, "loadgen", model.User{
				Login: u.login, FullName: "Bench " + u.login, Role: role, Active: true,
			})
			if err != nil {
				return err
			}
			if err := sys.Auth.SetPassword(tx, u.login, u.password); err != nil {
				return err
			}
			ids[i] = id
			users[i] = u
		}
		for p := range projects {
			var members []int64
			for i := range users {
				if i%nProjects == p {
					members = append(members, ids[i])
				}
			}
			id, err := sys.DB.CreateProject(tx, "loadgen", model.Project{
				Name: fmt.Sprintf("bench-p%03d", p+1), Coach: ids[0],
				Members: members, Area: "genomics",
			})
			if err != nil {
				return err
			}
			projects[p] = id
		}
		for i := range users {
			if users[i].role == model.RoleScientist {
				users[i].project = projects[i%nProjects]
			} else {
				users[i].project = projects[0]
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return users, projects, nil
}

// BootServer serves the portal over a real localhost TCP listener and
// returns the base URL plus a shutdown function. The harness measures at
// this socket.
func BootServer(sys *core.System, cfg portal.Config) (string, func() error, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{
		Handler:           portal.NewWithConfig(sys, cfg),
		ReadHeaderTimeout: 5 * time.Second,
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	var once sync.Once
	var shutErr error
	shutdown := func() error {
		once.Do(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				shutErr = err
				return
			}
			if err := <-done; err != nil && err != http.ErrServerClosed {
				shutErr = err
			}
		})
		return shutErr
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

// Run executes one complete harness run: generate the population, boot
// the portal on a TCP socket, log the client pool in, drive the mixed
// workload for cfg.Duration, and return the measured report. A non-nil
// error means the harness itself failed to run; workload validation
// failures are reported through Report.Errors / Report.Failures.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	sys, err := core.New(core.Options{})
	if err != nil {
		return nil, err
	}
	profile := genload.FGCZJan2010.Scaled(cfg.Scale)
	profile.Seed = cfg.Seed
	start := time.Now()
	if err := genload.Generate(sys, profile); err != nil {
		return nil, fmt.Errorf("loadgen: population: %w", err)
	}
	cfg.logf("population generated at scale %.2f in %v", cfg.Scale, time.Since(start).Round(time.Millisecond))

	users, _, err := preparePool(sys, cfg.Clients+cfg.Writers)
	if err != nil {
		return nil, fmt.Errorf("loadgen: pool: %w", err)
	}
	base, shutdown, err := BootServer(sys, cfg.Portal)
	if err != nil {
		return nil, err
	}
	defer func() { _ = shutdown() }()
	cfg.logf("portal serving at %s", base)

	readerBases := []string{base}
	if cfg.Replicas > 0 {
		bases, cleanup, err := bootReplicas(cfg, sys)
		if cleanup != nil {
			defer cleanup()
		}
		if err != nil {
			return nil, err
		}
		readerBases = bases
	}

	report, err := drive(cfg, readerBases, base, users)
	if err != nil {
		return nil, err
	}
	if err := shutdown(); err != nil {
		return nil, fmt.Errorf("loadgen: shutdown: %w", err)
	}
	return report, nil
}

// bootReplicas stands up cfg.Replicas read replicas over real TCP: a WAL
// shipper on the primary, and per replica a fresh system wired exactly
// like the primary's (same schema registration), flipped into replica
// mode, followed up to the primary's current seq, and served by its own
// portal socket. Readers then browse replicated state while the primary
// keeps committing; each replica's search index is knowingly empty
// (replicated commits fire no events — see docs/replication.md), so the
// replica portal answers /api/search with 503 search_unavailable and the
// search workload verifies exactly that refusal.
func bootReplicas(cfg Config, sys *core.System) ([]string, func(), error) {
	var cleanups []func()
	cleanup := func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}
	shipper := repl.NewServer(sys.Store)
	shipAddr, err := shipper.Start("127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	cleanups = append(cleanups, func() { shipper.Close() })

	head := sys.Store.CommitSeq()
	bases := make([]string, 0, cfg.Replicas)
	for i := 0; i < cfg.Replicas; i++ {
		fsys, err := core.NewWithStore(store.New(), core.Options{})
		if err != nil {
			return nil, cleanup, fmt.Errorf("loadgen: replica %d: %w", i+1, err)
		}
		fsys.Store.SetReplica(true)
		f := repl.NewFollower(fsys.Store, shipAddr, repl.FollowerOptions{})
		f.Start()
		cleanups = append(cleanups, f.Close)
		if err := f.WaitForSeq(head, 60*time.Second); err != nil {
			return nil, cleanup, fmt.Errorf("loadgen: replica %d catch-up: %w", i+1, err)
		}
		pcfg := cfg.Portal
		pcfg.ReplicaStatus = func() any { return f.Status() }
		rbase, rshut, err := BootServer(fsys, pcfg)
		if err != nil {
			return nil, cleanup, fmt.Errorf("loadgen: replica %d portal: %w", i+1, err)
		}
		cleanups = append(cleanups, func() { _ = rshut() })
		bases = append(bases, rbase)
		cfg.logf("replica %d caught up to seq %d, serving at %s", i+1, head, rbase)
	}
	return bases, cleanup, nil
}
