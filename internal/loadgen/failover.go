package loadgen

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/genload"
	"repro/internal/model"
	"repro/internal/repl"
	"repro/internal/store"
)

// RunFailover executes the failover scenario: a primary with one
// WAL-shipping follower takes the mixed workload for half the run, then
// the primary portal is killed mid-load. The follower is drained to the
// primary's committed head, promoted over HTTP (admin-only POST
// /api/replication/promote — the same path an operator's
// `bfabric-admin promote` takes), and every client re-points and
// re-authenticates against the new primary for the second half.
//
// The scenario is a correctness gate as much as a benchmark: writers are
// restricted to uniquely named sample creations and keep a ledger of
// every 201 the old primary acknowledged; after the run, each acked name
// must exist on the promoted store. Because the drain completes before
// promotion, this controlled failover loses nothing — the report fails
// loudly if it does. The outage itself (kill → drain → promote →
// re-login) is recorded as a single synthetic "switchover" sample, and
// throughput covers the whole window including the outage, so the
// failover/ baseline rows honestly price the interruption.
func RunFailover(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	cfg.Replicas = 0

	sys, err := core.New(core.Options{})
	if err != nil {
		return nil, err
	}
	profile := genload.FGCZJan2010.Scaled(cfg.Scale)
	profile.Seed = cfg.Seed
	start := time.Now()
	if err := genload.Generate(sys, profile); err != nil {
		return nil, fmt.Errorf("loadgen: population: %w", err)
	}
	cfg.logf("population generated at scale %.2f in %v", cfg.Scale, time.Since(start).Round(time.Millisecond))

	users, _, err := preparePool(sys, cfg.Clients+cfg.Writers)
	if err != nil {
		return nil, fmt.Errorf("loadgen: pool: %w", err)
	}
	base, shutPrimary, err := BootServer(sys, cfg.Portal)
	if err != nil {
		return nil, err
	}
	defer func() { _ = shutPrimary() }()
	cfg.logf("primary serving at %s", base)

	// The follower: its own system, wired like the primary's, fed by the
	// shipper, promoted to a fenced primary mid-run.
	shipper := repl.NewServer(sys.Store)
	shipAddr, err := shipper.Start("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer shipper.Close()
	fsys, err := core.NewWithStore(store.New(), core.Options{})
	if err != nil {
		return nil, fmt.Errorf("loadgen: follower: %w", err)
	}
	fsys.Store.SetReplica(true)
	f := repl.NewFollower(fsys.Store, shipAddr, repl.FollowerOptions{})
	f.Start()
	defer f.Close()
	if err := f.WaitForSeq(sys.Store.CommitSeq(), 60*time.Second); err != nil {
		return nil, fmt.Errorf("loadgen: follower catch-up: %w", err)
	}
	pcfg := cfg.Portal
	pcfg.ReplicaStatus = func() any { return f.Report() }
	pcfg.Promote = func() (any, error) {
		prom, err := f.Promote()
		if err != nil {
			return nil, err
		}
		if fsys.Search != nil {
			fsys.Search.ReindexAll()
		}
		return prom, nil
	}
	fbase, shutFollower, err := BootServer(fsys, pcfg)
	if err != nil {
		return nil, err
	}
	defer func() { _ = shutFollower() }()
	cfg.logf("follower serving at %s", fbase)

	transport := &http.Transport{
		MaxIdleConns:        cfg.Clients + cfg.Writers + 8,
		MaxIdleConnsPerHost: cfg.Clients + cfg.Writers + 8,
	}
	defer transport.CloseIdleConnections()
	fails := &failures{}
	workers := make([]*worker, 0, cfg.Clients+cfg.Writers)
	for i := 0; i < cfg.Clients+cfg.Writers; i++ {
		isWriter := i >= cfg.Clients
		w := newWorker(i, isWriter, false, base, transport, users[i], cfg.Timeout, cfg.Seed+int64(i)*7919, fails)
		w.samplesOnly = isWriter
		if err := w.login(); err != nil {
			return nil, fmt.Errorf("loadgen: %w", err)
		}
		workers = append(workers, w)
	}
	cfg.logf("%d readers + %d writers logged in; phase 1 against the primary for %v",
		cfg.Clients, cfg.Writers, cfg.Duration/2)

	measureStart := time.Now()
	runPhase(workers, time.Now().Add(cfg.Duration/2))

	// The outage: kill the primary portal, drain, promote, re-point.
	swStart := time.Now()
	if err := shutPrimary(); err != nil {
		return nil, fmt.Errorf("loadgen: killing primary portal: %w", err)
	}
	head := sys.Store.CommitSeq()
	if err := f.WaitForSeq(head, 30*time.Second); err != nil {
		return nil, fmt.Errorf("loadgen: draining follower to seq %d: %w", head, err)
	}
	shipper.Close()
	prom, err := promoteHTTP(fbase, users[0], cfg.Timeout)
	if err != nil {
		return nil, err
	}
	for _, w := range workers {
		w.base = fbase
		w.token = ""
		if err := w.login(); err != nil {
			return nil, fmt.Errorf("loadgen: re-login after promotion: %w", err)
		}
	}
	swDur := time.Since(swStart)
	cfg.logf("switchover in %v: promoted %s to epoch %d at seq %d",
		swDur.Round(time.Millisecond), fbase, prom.Epoch, prom.LastApplied)

	cfg.logf("phase 2 against the promoted primary for %v", cfg.Duration/2)
	runPhase(workers, time.Now().Add(cfg.Duration/2))
	elapsed := time.Since(measureStart)

	// The loss ledger: every sample name the old primary acked with 201
	// must exist on the promoted store.
	names := make(map[string]bool)
	if err := fsys.View(func(tx *store.Tx) error {
		return tx.Scan(model.KindSample, func(r store.Record) bool {
			names[r.String("name")] = true
			return true
		})
	}); err != nil {
		return nil, err
	}
	acked, lost := 0, 0
	for _, w := range workers {
		for _, name := range w.acked {
			acked++
			if !names[name] {
				lost++
				fails.add(opSwitch, "acked write lost across failover: sample "+name)
			}
		}
	}
	cfg.logf("loss ledger: %d acked sample creations, %d lost", acked, lost)
	if acked == 0 {
		fails.add(opSwitch, "no acked writes recorded: the scenario proved nothing")
	}

	// The new primary must identify itself as one, fenced at a higher epoch.
	if err := verifyPromotedRole(fbase, cfg.Timeout); err != nil {
		fails.add(opSwitch, err.Error())
	}

	recs := make([]*recorder, 0, len(workers)+1)
	for _, w := range workers {
		recs = append(recs, w.rec)
	}
	swRec := newRecorder()
	swRec.observe(opSwitch, swDur, false)
	recs = append(recs, swRec)

	report := buildReport(cfg, elapsed, recs, fails)
	report.Failover = true
	if err := shutFollower(); err != nil {
		return nil, fmt.Errorf("loadgen: shutdown: %w", err)
	}
	return report, nil
}

// runPhase drives every worker until the deadline and waits them out.
func runPhase(workers []*worker, deadline time.Time) {
	done := make(chan struct{})
	for _, w := range workers {
		go func(w *worker) {
			defer func() { done <- struct{}{} }()
			w.run(deadline)
		}(w)
	}
	for range workers {
		<-done
	}
}

// promoteHTTP performs the operator's failover action over the wire:
// log the admin in, POST the promote endpoint, return the promotion.
func promoteHTTP(base string, admin poolUser, timeout time.Duration) (repl.Promotion, error) {
	client := &http.Client{Timeout: timeout}
	body, _ := json.Marshal(map[string]string{"Login": admin.login, "Password": admin.password})
	resp, err := client.Post(base+"/api/login", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return repl.Promotion{}, fmt.Errorf("loadgen: admin login: %w", err)
	}
	var tok struct{ Token string }
	err = json.NewDecoder(resp.Body).Decode(&tok)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || err != nil || tok.Token == "" {
		return repl.Promotion{}, fmt.Errorf("loadgen: admin login: status %d (%v)", resp.StatusCode, err)
	}
	req, err := http.NewRequest(http.MethodPost, base+"/api/replication/promote", nil)
	if err != nil {
		return repl.Promotion{}, err
	}
	req.Header.Set("Authorization", "Bearer "+tok.Token)
	resp, err = client.Do(req)
	if err != nil {
		return repl.Promotion{}, fmt.Errorf("loadgen: promote: %w", err)
	}
	var out struct {
		Promotion repl.Promotion `json:"promotion"`
	}
	err = json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || err != nil {
		return repl.Promotion{}, fmt.Errorf("loadgen: promote: status %d (%v)", resp.StatusCode, err)
	}
	return out.Promotion, nil
}

// verifyPromotedRole asserts the promoted portal reports itself as a
// primary at an epoch past the original timeline's.
func verifyPromotedRole(base string, timeout time.Duration) error {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(base + "/api/replication")
	if err != nil {
		return fmt.Errorf("replication status after promote: %w", err)
	}
	defer resp.Body.Close()
	var rep struct {
		Role  string `json:"role"`
		Epoch uint64 `json:"epoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return fmt.Errorf("replication status after promote: %w", err)
	}
	if resp.StatusCode != http.StatusOK || rep.Role != "primary" || rep.Epoch < 2 {
		return fmt.Errorf("promoted node reports role=%q epoch=%d (status %d), want primary at epoch >= 2",
			rep.Role, rep.Epoch, resp.StatusCode)
	}
	return nil
}
