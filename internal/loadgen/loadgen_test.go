package loadgen

import (
	"strings"
	"testing"
	"time"
)

// TestHarnessSmoke runs the full socket-level harness briefly at small
// scale: boot, login pool, mixed workload with writers, zero validation
// failures. This is the correctness gate `make bench-http-smoke` wires
// into `make verify`; the measured run is `make bench-http`.
func TestHarnessSmoke(t *testing.T) {
	cfg := Config{
		Scale:    0.02,
		Clients:  6,
		Writers:  2,
		Duration: 1500 * time.Millisecond,
		Seed:     42,
	}
	if testing.Short() {
		cfg.Duration = 800 * time.Millisecond
	}
	report, err := Run(cfg)
	if err != nil {
		t.Fatalf("harness run: %v", err)
	}
	if report.Total.Requests == 0 {
		t.Fatal("harness made no requests")
	}
	if report.Errors != 0 {
		t.Fatalf("harness recorded %d validation failures:\n%v", report.Errors, report.Failures)
	}
	// The mixed workload must actually exercise reads and writes.
	for _, op := range []string{opBrowse, opWrite} {
		if report.Ops[op].Requests == 0 {
			t.Errorf("op %q saw no requests", op)
		}
	}
	if len(report.BaselineEntries()) == 0 {
		t.Error("no baseline entries produced")
	}
}

// TestReplicaHarnessSmoke runs the replicated read mode briefly: primary
// plus two WAL-shipping replicas, readers spread across the replica
// portals, writers racing on the primary — zero validation failures
// means replicated reads serve consistent pages while frames stream in.
func TestReplicaHarnessSmoke(t *testing.T) {
	cfg := Config{
		Scale:    0.02,
		Clients:  6,
		Writers:  2,
		Replicas: 2,
		Duration: 1500 * time.Millisecond,
		Seed:     43,
	}
	if testing.Short() {
		cfg.Duration = 800 * time.Millisecond
	}
	report, err := Run(cfg)
	if err != nil {
		t.Fatalf("replica harness run: %v", err)
	}
	if report.Errors != 0 {
		t.Fatalf("replica harness recorded %d validation failures:\n%v", report.Errors, report.Failures)
	}
	if report.Ops[opBrowse].Requests == 0 {
		t.Error("replica readers made no browse requests")
	}
	if report.Ops[opWrite].Requests == 0 {
		t.Error("primary writers made no requests")
	}
	for _, e := range report.BaselineEntries() {
		if !strings.Contains(e, "BenchmarkHTTPSocket/replica-2/") {
			t.Fatalf("baseline entry not namespaced: %s", e)
		}
	}
}

// TestFailoverHarnessSmoke runs the kill→promote→re-point scenario
// briefly: half the run on the primary, portal killed, follower drained
// and promoted over HTTP, clients re-pointed — zero validation failures
// means no acknowledged write was lost and the promoted node served both
// halves of the workload.
func TestFailoverHarnessSmoke(t *testing.T) {
	cfg := Config{
		Scale:    0.02,
		Clients:  6,
		Writers:  2,
		Duration: 2 * time.Second,
		Seed:     44,
	}
	if testing.Short() {
		cfg.Duration = 1200 * time.Millisecond
	}
	report, err := RunFailover(cfg)
	if err != nil {
		t.Fatalf("failover harness run: %v", err)
	}
	if report.Errors != 0 {
		t.Fatalf("failover harness recorded %d validation failures:\n%v", report.Errors, report.Failures)
	}
	if !report.Failover {
		t.Error("report not marked as a failover run")
	}
	sw := report.Ops[opSwitch]
	if sw.Requests != 1 || sw.P99 <= 0 {
		t.Errorf("switchover op = %+v, want exactly one positive-latency sample", sw)
	}
	if report.Ops[opWrite].Requests == 0 {
		t.Error("failover writers made no requests")
	}
	for _, e := range report.BaselineEntries() {
		if !strings.Contains(e, "BenchmarkHTTPSocket/failover/") {
			t.Fatalf("baseline entry not namespaced: %s", e)
		}
	}
}
