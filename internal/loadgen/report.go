package loadgen

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// recorder accumulates one worker's latency samples. Workers never share a
// recorder, so no locking is needed on the hot path; drive merges them
// after the run.
type recorder struct {
	samples  map[string][]time.Duration
	notMod   map[string]int64
	failures map[string]int64
}

func newRecorder() *recorder {
	return &recorder{
		samples:  make(map[string][]time.Duration),
		notMod:   make(map[string]int64),
		failures: make(map[string]int64),
	}
}

func (r *recorder) observe(op string, d time.Duration, notModified bool) {
	r.samples[op] = append(r.samples[op], d)
	if notModified {
		r.notMod[op]++
	}
}

func (r *recorder) fail(op string) { r.failures[op]++ }

// OpStats is the measured outcome of one operation class.
type OpStats struct {
	Requests    int64   `json:"requests"`
	ReqPerSec   float64 `json:"req_per_sec"`
	P50         float64 `json:"p50_ms"`
	P95         float64 `json:"p95_ms"`
	P99         float64 `json:"p99_ms"`
	NotModified int64   `json:"not_modified,omitempty"`
	Errors      int64   `json:"errors,omitempty"`
}

// Report is the result of one harness run.
type Report struct {
	Scale    float64 `json:"scale"`
	Clients  int     `json:"clients"`
	Writers  int     `json:"writers"`
	Replicas int     `json:"replicas,omitempty"`
	// Failover marks a kill→promote→re-point run: the report covers the
	// whole window including the outage, and a synthetic "switchover" op
	// carries the outage duration as its single latency sample.
	Failover bool               `json:"failover,omitempty"`
	Duration float64            `json:"duration_s"`
	Total    OpStats            `json:"total"`
	Ops      map[string]OpStats `json:"ops"`
	Errors   int64              `json:"errors"`
	Failures []string           `json:"failures,omitempty"`
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

func buildReport(cfg Config, elapsed time.Duration, recs []*recorder, fails *failures) *Report {
	merged := make(map[string][]time.Duration)
	notMod := make(map[string]int64)
	opFails := make(map[string]int64)
	for _, r := range recs {
		for op, s := range r.samples {
			merged[op] = append(merged[op], s...)
		}
		for op, n := range r.notMod {
			notMod[op] += n
		}
		for op, n := range r.failures {
			opFails[op] += n
		}
	}
	rep := &Report{
		Scale:    cfg.Scale,
		Clients:  cfg.Clients,
		Writers:  cfg.Writers,
		Replicas: cfg.Replicas,
		Duration: elapsed.Seconds(),
		Ops:      make(map[string]OpStats),
		Errors:   fails.n,
		Failures: fails.msgs,
	}
	var all []time.Duration
	for op, s := range merged {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		rep.Ops[op] = OpStats{
			Requests:    int64(len(s)),
			ReqPerSec:   float64(len(s)) / elapsed.Seconds(),
			P50:         ms(percentile(s, 0.50)),
			P95:         ms(percentile(s, 0.95)),
			P99:         ms(percentile(s, 0.99)),
			NotModified: notMod[op],
			Errors:      opFails[op],
		}
		all = append(all, s...)
	}
	for op, n := range opFails {
		if _, ok := rep.Ops[op]; !ok {
			rep.Ops[op] = OpStats{Errors: n}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	var totalNotMod int64
	for _, n := range notMod {
		totalNotMod += n
	}
	rep.Total = OpStats{
		Requests:    int64(len(all)),
		ReqPerSec:   float64(len(all)) / elapsed.Seconds(),
		P50:         ms(percentile(all, 0.50)),
		P95:         ms(percentile(all, 0.95)),
		P99:         ms(percentile(all, 0.99)),
		NotModified: totalNotMod,
		Errors:      fails.n,
	}
	return rep
}

// String renders the human-readable run summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "BENCH_http: scale=%.2f clients=%d writers=%d", r.Scale, r.Clients, r.Writers)
	if r.Replicas > 0 {
		fmt.Fprintf(&b, " replicas=%d", r.Replicas)
	}
	if r.Failover {
		fmt.Fprintf(&b, " failover")
	}
	fmt.Fprintf(&b, " duration=%.1fs\n", r.Duration)
	fmt.Fprintf(&b, "%-8s %9s %9s %9s %9s %9s %6s %6s\n",
		"op", "requests", "req/s", "p50(ms)", "p95(ms)", "p99(ms)", "304s", "errs")
	ops := make([]string, 0, len(r.Ops))
	for op := range r.Ops {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		s := r.Ops[op]
		fmt.Fprintf(&b, "%-8s %9d %9.1f %9.2f %9.2f %9.2f %6d %6d\n",
			op, s.Requests, s.ReqPerSec, s.P50, s.P95, s.P99, s.NotModified, s.Errors)
	}
	s := r.Total
	fmt.Fprintf(&b, "%-8s %9d %9.1f %9.2f %9.2f %9.2f %6d %6d\n",
		"TOTAL", s.Requests, s.ReqPerSec, s.P50, s.P95, s.P99, s.NotModified, s.Errors)
	if len(r.Failures) > 0 {
		fmt.Fprintf(&b, "validation failures (%d total, first %d):\n", r.Errors, len(r.Failures))
		for _, m := range r.Failures {
			fmt.Fprintf(&b, "  %s\n", m)
		}
	}
	return b.String()
}

// BaselineEntries renders the run as one-line benchmark entries in the
// BENCH_baseline.json dialect (one JSON object per line, "ns/op" carrying
// the regression-gated number — here the op's p99 in nanoseconds — so
// scripts/bench_compare.sh can diff HTTP latency exactly like the
// in-process benchmarks). Replicated runs are namespaced
// BenchmarkHTTPSocket/replica-<N>/..., so a replica row never collides
// with (or silently replaces) the single-server baseline it is compared
// against.
func (r *Report) BaselineEntries() []string {
	ops := make([]string, 0, len(r.Ops))
	for op := range r.Ops {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	var lines []string
	entry := func(name string, s OpStats) string {
		return fmt.Sprintf(`    {"package": "repro/internal/loadgen", "name": "BenchmarkHTTPSocket/%s%s", "iterations": %d, "metrics": {"ns/op": %.0f, "req/s": %.1f, "p50-ms": %.2f, "p95-ms": %.2f, "p99-ms": %.2f, "not-modified": %d, "errors": %d}}`,
			r.NamePrefix(), name, s.Requests, s.P99*1e6, s.ReqPerSec, s.P50, s.P95, s.P99, s.NotModified, s.Errors)
	}
	for _, op := range ops {
		lines = append(lines, entry(op, r.Ops[op]))
	}
	lines = append(lines, entry("total", r.Total))
	return lines
}

// NamePrefix is the benchmark-name namespace of this run's baseline
// entries under BenchmarkHTTPSocket/: empty for a single-server run,
// "replica-<N>/" for a replicated one, "failover/" for a promotion run
// (whose numbers include the outage and must never refresh the
// single-server rows).
func (r *Report) NamePrefix() string {
	if r.Failover {
		return "failover/"
	}
	if r.Replicas > 0 {
		return fmt.Sprintf("replica-%d/", r.Replicas)
	}
	return ""
}
