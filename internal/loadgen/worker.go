package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"repro/internal/model"
)

// Operation class names, the keys latency percentiles are reported under.
const (
	opBrowse     = "browse"
	opObject     = "object"
	opStats      = "stats"
	opStatsGroup = "stats-group"
	opSearch     = "search"
	opTasks      = "tasks"
	opWrite      = "write"
	// opSwitch is the synthetic failover-outage sample: one observation
	// whose latency is the full kill→promote→re-point wall time.
	opSwitch = "switchover"
)

// failures collects validation failures across workers: the full count
// plus a capped sample of messages for the report.
type failures struct {
	mu   sync.Mutex
	n    int64
	msgs []string
}

const maxFailureMsgs = 25

func (f *failures) add(op, msg string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.n++
	if len(f.msgs) < maxFailureMsgs {
		f.msgs = append(f.msgs, op+": "+msg)
	}
}

// stream is one browse cursor chain a worker follows: a fixed kind+filter
// combination whose pages must be consistent (ascending ids, cursor
// resuming strictly after the last examined record).
type stream struct {
	kind    string
	filter  url.Values
	cursor  int64 // next "from", 0 = first page
	prevMax int64 // highest id seen in the current chain
}

// worker drives one authenticated client.
type worker struct {
	id     int
	writer bool
	// replica marks a worker pointed at a replica portal, where search is
	// deliberately unavailable (503) rather than silently empty.
	replica bool
	base    string
	client  *http.Client
	token   string
	user    poolUser
	rng     *rand.Rand
	rec     *recorder
	fails   *failures

	streams   []*stream
	etags     map[string]string
	sampleIDs []int64
	wuIDs     []int64

	// writer state
	mySamples []int64
	seq       int
	// samplesOnly restricts a writer to sample creations and records every
	// acknowledged name in acked — the failover scenario's loss ledger:
	// anything the portal acked with 201 must survive the promotion.
	samplesOnly bool
	acked       []string
}

func newWorker(id int, writer, replica bool, base string, rt http.RoundTripper, u poolUser, timeout time.Duration, seed int64, fails *failures) *worker {
	w := &worker{
		id:      id,
		writer:  writer,
		replica: replica,
		base:    base,
		client:  &http.Client{Transport: rt, Timeout: timeout},
		user:    u,
		rng:     rand.New(rand.NewSource(seed)),
		rec:     newRecorder(),
		fails:   fails,
		etags:   make(map[string]string),
	}
	for _, kind := range []string{model.KindSample, model.KindExtract, model.KindWorkunit, model.KindDataResource, model.KindProject} {
		w.streams = append(w.streams, &stream{kind: kind, filter: url.Values{}})
	}
	w.streams = append(w.streams,
		&stream{kind: model.KindSample, filter: url.Values{"species": {"Homo sapiens"}}},
		&stream{kind: model.KindWorkunit, filter: url.Values{"state": {model.WorkunitReady}}},
		&stream{kind: model.KindDataResource, filter: url.Values{"format": {"cel"}}},
	)
	return w
}

// request performs one measured HTTP call and validates its status
// against the allowed set. It returns the response body (fully read) and
// the recorded status, or -1 when the transport failed.
func (w *worker) request(op, method, path string, body any, header http.Header, allowed ...int) (int, []byte, http.Header) {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			w.fails.add(op, "marshal: "+err.Error())
			return -1, nil, nil
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, w.base+path, rd)
	if err != nil {
		w.fails.add(op, "request: "+err.Error())
		return -1, nil, nil
	}
	if w.token != "" {
		req.Header.Set("Authorization", "Bearer "+w.token)
	}
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	start := time.Now()
	resp, err := w.client.Do(req)
	if err != nil {
		w.rec.fail(op)
		w.fails.add(op, "transport: "+err.Error())
		return -1, nil, nil
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	elapsed := time.Since(start)
	if err != nil {
		w.rec.fail(op)
		w.fails.add(op, "read body: "+err.Error())
		return -1, nil, nil
	}
	ok := false
	for _, a := range allowed {
		if resp.StatusCode == a {
			ok = true
			break
		}
	}
	if !ok {
		w.rec.fail(op)
		snippet := string(data)
		if len(snippet) > 120 {
			snippet = snippet[:120]
		}
		w.fails.add(op, fmt.Sprintf("%s %s: status %d (%s)", method, path, resp.StatusCode, snippet))
		return resp.StatusCode, data, resp.Header
	}
	w.rec.observe(op, elapsed, resp.StatusCode == http.StatusNotModified)
	return resp.StatusCode, data, resp.Header
}

// login authenticates the worker over HTTP; not part of the measured run.
func (w *worker) login() error {
	body, _ := json.Marshal(map[string]string{"Login": w.user.login, "Password": w.user.password})
	resp, err := w.client.Post(w.base+"/api/login", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("login %s: status %d", w.user.login, resp.StatusCode)
	}
	var out struct{ Token string }
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || out.Token == "" {
		return fmt.Errorf("login %s: bad token response", w.user.login)
	}
	w.token = out.Token
	return nil
}

// run drives the worker's op loop until the deadline.
func (w *worker) run(deadline time.Time) {
	for time.Now().Before(deadline) {
		if w.writer {
			w.writeOp()
			continue
		}
		switch p := w.rng.Intn(100); {
		case p < 45:
			w.browseOp()
		case p < 63:
			w.objectOp()
		case p < 71:
			w.statsOp()
		case p < 77:
			w.statsGroupOp()
		case p < 87:
			w.searchOp()
		default:
			w.tasksOp()
		}
	}
}

// browsePage is the browse listing response shape the harness validates.
type browsePage struct {
	Items []map[string]any `json:"items"`
	Next  int64            `json:"next"`
	AsOf  uint64           `json:"asOf"`
}

func (w *worker) browseOp() {
	st := w.streams[w.rng.Intn(len(w.streams))]
	q := url.Values{}
	for k, vs := range st.filter {
		q[k] = vs
	}
	const limit = 50
	q.Set("limit", strconv.Itoa(limit))
	if st.cursor > 0 {
		q.Set("from", strconv.FormatInt(st.cursor, 10))
	}
	path := "/api/browse/" + st.kind + "?" + q.Encode()

	// Conditional replay: reuse the page's last known validator half the
	// time. A 304 must come only in reply to an If-None-Match.
	header := http.Header{}
	conditional := false
	if etag, ok := w.etags[path]; ok && w.rng.Intn(2) == 0 {
		header.Set("If-None-Match", etag)
		conditional = true
	}
	status, data, respHeader := w.request(opBrowse, "GET", path, nil, header, http.StatusOK, http.StatusNotModified)
	switch status {
	case http.StatusNotModified:
		if !conditional {
			w.fails.add(opBrowse, path+": 304 without If-None-Match")
		}
		if len(data) != 0 {
			w.fails.add(opBrowse, path+": 304 with non-empty body")
		}
		return
	case http.StatusOK:
	default:
		return
	}
	var page browsePage
	if err := json.Unmarshal(data, &page); err != nil {
		w.fails.add(opBrowse, path+": bad JSON: "+err.Error())
		return
	}
	if page.AsOf == 0 {
		w.fails.add(opBrowse, path+": missing asOf")
	}
	if len(page.Items) > limit {
		w.fails.add(opBrowse, fmt.Sprintf("%s: %d items over limit %d", path, len(page.Items), limit))
	}
	prev := st.cursor - 1
	for _, item := range page.Items {
		idv, ok := item["id"].(float64)
		id := int64(idv)
		if !ok || id <= 0 {
			w.fails.add(opBrowse, path+": item without positive id")
			break
		}
		if id <= prev {
			w.fails.add(opBrowse, fmt.Sprintf("%s: ids not strictly ascending (%d after %d)", path, id, prev))
			break
		}
		if name, ok := item["name"].(string); !ok || name == "" {
			w.fails.add(opBrowse, fmt.Sprintf("%s: item %d without name", path, id))
			break
		}
		prev = id
		switch st.kind {
		case model.KindSample:
			w.sampleIDs = appendCapped(w.sampleIDs, id)
		case model.KindWorkunit:
			w.wuIDs = appendCapped(w.wuIDs, id)
		}
	}
	// Pagination consistency: a follow-up page resumes strictly after
	// everything this chain already examined.
	if st.cursor > 0 && len(page.Items) > 0 && int64(page.Items[0]["id"].(float64)) <= st.prevMax {
		w.fails.add(opBrowse, fmt.Sprintf("%s: page overlaps previous (id %v <= %d)", path, page.Items[0]["id"], st.prevMax))
	}
	if prev > st.prevMax {
		st.prevMax = prev
	}
	if page.Next != 0 && page.Next <= st.cursor {
		w.fails.add(opBrowse, fmt.Sprintf("%s: cursor does not advance (next %d from %d)", path, page.Next, st.cursor))
	}
	st.cursor = page.Next
	if st.cursor == 0 {
		st.prevMax = 0
	}
	if etag := respHeader.Get("ETag"); etag != "" {
		w.etags[path] = etag
	}
}

func appendCapped(ids []int64, id int64) []int64 {
	const cap = 512
	if len(ids) < cap {
		return append(ids, id)
	}
	ids[int(id)%cap] = id
	return ids
}

func (w *worker) objectOp() {
	switch {
	case len(w.sampleIDs) > 0 && w.rng.Intn(2) == 0:
		id := w.sampleIDs[w.rng.Intn(len(w.sampleIDs))]
		path := fmt.Sprintf("/api/samples/%d", id)
		status, data, _ := w.request(opObject, "GET", path, nil, nil, http.StatusOK)
		if status != http.StatusOK {
			return
		}
		var sm model.Sample
		if err := json.Unmarshal(data, &sm); err != nil || sm.ID != id {
			w.fails.add(opObject, fmt.Sprintf("%s: bad sample body (id %d)", path, sm.ID))
		}
	case len(w.wuIDs) > 0:
		id := w.wuIDs[w.rng.Intn(len(w.wuIDs))]
		path := fmt.Sprintf("/api/workunits/%d", id)
		status, data, _ := w.request(opObject, "GET", path, nil, nil, http.StatusOK)
		if status != http.StatusOK {
			return
		}
		var out struct {
			Workunit  model.Workunit
			Resources []model.DataResource
		}
		if err := json.Unmarshal(data, &out); err != nil || out.Workunit.ID != id {
			w.fails.add(opObject, fmt.Sprintf("%s: bad workunit body (id %d)", path, out.Workunit.ID))
		}
	default:
		// Nothing browsed yet in this worker's scope: browse instead.
		w.browseOp()
	}
}

func (w *worker) statsOp() {
	const path = "/api/stats"
	header := http.Header{}
	conditional := false
	if etag, ok := w.etags[path]; ok && w.rng.Intn(2) == 0 {
		header.Set("If-None-Match", etag)
		conditional = true
	}
	status, data, respHeader := w.request(opStats, "GET", path, nil, header, http.StatusOK, http.StatusNotModified)
	switch status {
	case http.StatusNotModified:
		if !conditional {
			w.fails.add(opStats, "304 without If-None-Match")
		}
		if len(data) != 0 {
			w.fails.add(opStats, "304 with non-empty body")
		}
		return
	case http.StatusOK:
	default:
		return
	}
	var st model.Stats
	if err := json.Unmarshal(data, &st); err != nil {
		w.fails.add(opStats, "bad JSON: "+err.Error())
		return
	}
	if st.Users <= 0 || st.Projects <= 0 {
		w.fails.add(opStats, fmt.Sprintf("implausible stats %+v", st))
	}
	if etag := respHeader.Get("ETag"); etag != "" {
		w.etags[path] = etag
	}
}

// statsGroupOp polls the grouped live-count endpoint the way a dashboard
// widget would: rotating over a few kind/field pairs, replaying the last
// validator half the time, and sanity-checking the histogram it gets
// back.
func (w *worker) statsGroupOp() {
	pairs := [...][2]string{
		{model.KindWorkunit, "state"},
		{model.KindSample, "species"},
		{model.KindDataResource, "format"},
	}
	pair := pairs[w.rng.Intn(len(pairs))]
	path := "/api/stats/" + pair[0] + "?by=" + pair[1]
	header := http.Header{}
	conditional := false
	if etag, ok := w.etags[path]; ok && w.rng.Intn(2) == 0 {
		header.Set("If-None-Match", etag)
		conditional = true
	}
	status, data, respHeader := w.request(opStatsGroup, "GET", path, nil, header, http.StatusOK, http.StatusNotModified)
	switch status {
	case http.StatusNotModified:
		if !conditional {
			w.fails.add(opStatsGroup, path+": 304 without If-None-Match")
		}
		if len(data) != 0 {
			w.fails.add(opStatsGroup, path+": 304 with non-empty body")
		}
		return
	case http.StatusOK:
	default:
		return
	}
	var out struct {
		Kind   string `json:"kind"`
		By     string `json:"by"`
		Groups []struct {
			Key   any `json:"key"`
			Count int `json:"count"`
		} `json:"groups"`
		AsOf uint64 `json:"asOf"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		w.fails.add(opStatsGroup, path+": bad JSON: "+err.Error())
		return
	}
	if out.Kind != pair[0] || out.By != pair[1] || out.AsOf == 0 {
		w.fails.add(opStatsGroup, path+": wrong kind/by/asOf in body")
		return
	}
	if len(out.Groups) == 0 {
		w.fails.add(opStatsGroup, path+": empty histogram over populated table")
		return
	}
	for _, g := range out.Groups {
		if g.Count < 1 {
			w.fails.add(opStatsGroup, fmt.Sprintf("%s: group %v with non-positive count %d", path, g.Key, g.Count))
			break
		}
		if s, ok := g.Key.(string); ok && s == "" {
			w.fails.add(opStatsGroup, path+": group with empty key")
			break
		}
	}
	if etag := respHeader.Get("ETag"); etag != "" {
		w.etags[path] = etag
	}
}

func (w *worker) searchOp() {
	q := fmt.Sprintf("sample-%05d", 1+w.rng.Intn(256))
	path := "/api/search?q=" + url.QueryEscape(q)
	if w.replica {
		// Replicas refuse search honestly instead of serving their empty
		// index as zero hits; the refusal must be machine-readable and
		// retryable.
		status, data, respHeader := w.request(opSearch, "GET", path, nil, nil, http.StatusServiceUnavailable)
		if status != http.StatusServiceUnavailable {
			return
		}
		var env struct {
			Code string `json:"code"`
		}
		if err := json.Unmarshal(data, &env); err != nil || env.Code != "search_unavailable" {
			w.fails.add(opSearch, path+": replica 503 without search_unavailable code")
		}
		if respHeader.Get("Retry-After") == "" {
			w.fails.add(opSearch, path+": replica 503 without Retry-After")
		}
		return
	}
	status, data, _ := w.request(opSearch, "GET", path, nil, nil, http.StatusOK)
	if status != http.StatusOK {
		return
	}
	var hits []struct {
		Kind string
		ID   int64
	}
	if err := json.Unmarshal(data, &hits); err != nil {
		w.fails.add(opSearch, path+": bad JSON: "+err.Error())
		return
	}
	for _, h := range hits {
		if h.Kind == "" || h.ID <= 0 {
			w.fails.add(opSearch, path+": hit without kind/id")
			break
		}
	}
}

func (w *worker) tasksOp() {
	status, data, _ := w.request(opTasks, "GET", "/api/tasks", nil, nil, http.StatusOK)
	if status != http.StatusOK {
		return
	}
	var tasks []map[string]any
	if err := json.Unmarshal(data, &tasks); err != nil {
		w.fails.add(opTasks, "bad JSON: "+err.Error())
	}
}

func (w *worker) writeOp() {
	w.seq++
	if w.samplesOnly {
		w.createSampleOp()
		return
	}
	switch p := w.rng.Intn(100); {
	case p < 50 || len(w.mySamples) == 0:
		w.createSampleOp()
	case p < 80:
		name := fmt.Sprintf("bench-%s-e%06d", w.user.login, w.seq)
		status, data, _ := w.request(opWrite, "POST", "/api/extracts", map[string]any{
			"Extract": model.Extract{
				Name: name, Sample: w.mySamples[w.rng.Intn(len(w.mySamples))],
				ExtractionMethod: "TRIzol", Label: "Cy3",
			},
		}, nil, http.StatusCreated)
		if status != http.StatusCreated {
			return
		}
		var out struct{ IDs []int64 }
		if err := json.Unmarshal(data, &out); err != nil || len(out.IDs) != 1 {
			w.fails.add(opWrite, "create extract: bad ids body")
		}
	default:
		// Freshly coined annotation values; duplicates (409) are allowed —
		// two writers can legitimately coin the same trimmed value.
		value := fmt.Sprintf("bench-%s-t%06d", w.user.login, w.seq)
		w.request(opWrite, "POST", "/api/annotations", map[string]string{
			"Vocabulary": model.VocabTreatment, "Value": value,
		}, nil, http.StatusCreated, http.StatusConflict)
	}
}

// createSampleOp registers one uniquely named sample and remembers the
// acknowledgement when the worker keeps a loss ledger.
func (w *worker) createSampleOp() {
	name := fmt.Sprintf("bench-%s-s%06d", w.user.login, w.seq)
	status, data, _ := w.request(opWrite, "POST", "/api/samples", map[string]any{
		"Sample": model.Sample{
			Name: name, Project: w.user.project,
			Species: "Homo sapiens", Tissue: "Liver",
		},
	}, nil, http.StatusCreated)
	if status != http.StatusCreated {
		return
	}
	var out struct{ IDs []int64 }
	if err := json.Unmarshal(data, &out); err != nil || len(out.IDs) != 1 || out.IDs[0] <= 0 {
		w.fails.add(opWrite, "create sample: bad ids body")
		return
	}
	w.mySamples = appendCapped(w.mySamples, out.IDs[0])
	if w.samplesOnly {
		w.acked = append(w.acked, name)
	}
}

// drive logs the pool in and runs every worker until the deadline,
// merging per-worker recordings into the final report. Readers are
// assigned round-robin over readerBases (one entry per serving instance:
// just the primary, or the replica portals); writers always target
// writerBase. A worker sticks to its instance for its whole run, so every
// consistency check (cursor chains, ETag replays) observes one
// monotonically advancing store.
func drive(cfg Config, readerBases []string, writerBase string, users []poolUser) (*Report, error) {
	transport := &http.Transport{
		MaxIdleConns:        cfg.Clients + cfg.Writers + 8,
		MaxIdleConnsPerHost: cfg.Clients + cfg.Writers + 8,
	}
	defer transport.CloseIdleConnections()
	fails := &failures{}
	workers := make([]*worker, 0, cfg.Clients+cfg.Writers)
	for i := 0; i < cfg.Clients+cfg.Writers; i++ {
		isWriter := i >= cfg.Clients
		base := writerBase
		if !isWriter {
			base = readerBases[i%len(readerBases)]
		}
		w := newWorker(i, isWriter, base != writerBase, base, transport, users[i], cfg.Timeout, cfg.Seed+int64(i)*7919, fails)
		if err := w.login(); err != nil {
			return nil, fmt.Errorf("loadgen: %w", err)
		}
		workers = append(workers, w)
	}
	cfg.logf("%d readers + %d writers logged in; driving for %v", cfg.Clients, cfg.Writers, cfg.Duration)

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.run(deadline)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	recs := make([]*recorder, len(workers))
	for i, w := range workers {
		recs[i] = w.rec
	}
	report := buildReport(cfg, elapsed, recs, fails)
	return report, nil
}
