package search

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/store"
)

// ExportCSV writes search results to w as CSV — the paper's "search results
// can be exported into files". Columns: kind, id, score, name (when the hit
// record has a name field).
func (s *Service) ExportCSV(w io.Writer, hits []Hit) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"kind", "id", "score", "name"}); err != nil {
		return err
	}
	st := s.rg.Store()
	for _, h := range hits {
		name := ""
		if st.HasTable(h.Kind) {
			if r, err := st.Get(h.Kind, h.ID); err == nil {
				name = r.String("name")
				if name == "" {
					name = r.String("value") // annotation terms
				}
			}
		}
		rec := []string{
			h.Kind,
			strconv.FormatInt(h.ID, 10),
			strconv.FormatFloat(h.Score, 'f', 2, 64),
			name,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ExportRecordsCSV writes full records of one kind to w: the generic object
// export used by the admin screens. Fields are emitted in sorted order for
// determinism.
func (s *Service) ExportRecordsCSV(w io.Writer, kind string, ids []int64) error {
	st := s.rg.Store()
	if !st.HasTable(kind) {
		return fmt.Errorf("search: unknown kind %q", kind)
	}
	// Gather the union of fields over the exported rows.
	fieldSet := make(map[string]bool)
	records := make([]store.Record, 0, len(ids))
	for _, id := range ids {
		r, err := st.Get(kind, id)
		if err != nil {
			return err
		}
		for k := range r {
			if k != store.IDField {
				fieldSet[k] = true
			}
		}
		records = append(records, r)
	}
	fields := make([]string, 0, len(fieldSet))
	for f := range fieldSet {
		fields = append(fields, f)
	}
	sort.Strings(fields)

	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"id"}, fields...)); err != nil {
		return err
	}
	for _, r := range records {
		row := make([]string, 0, len(fields)+1)
		row = append(row, strconv.FormatInt(r.ID(), 10))
		for _, f := range fields {
			row = append(row, fmt.Sprint(r[f]))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
