package search

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/store"
)

// ExportCSV writes search results to w as CSV — the paper's "search results
// can be exported into files". Columns: kind, id, score, name (when the hit
// record has a name field).
func (s *Service) ExportCSV(w io.Writer, hits []Hit) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"kind", "id", "score", "name"}); err != nil {
		return err
	}
	st := s.rg.Store()
	// One read transaction for all hits; names are extracted from shared
	// record references without cloning.
	names := make([]string, len(hits))
	_ = st.View(func(tx *store.Tx) error {
		for i, h := range hits {
			if !st.HasTable(h.Kind) {
				continue
			}
			if r, err := tx.GetRef(h.Kind, h.ID); err == nil {
				names[i] = r.String("name")
				if names[i] == "" {
					names[i] = r.String("value") // annotation terms
				}
			}
		}
		return nil
	})
	for i, h := range hits {
		rec := []string{
			h.Kind,
			strconv.FormatInt(h.ID, 10),
			strconv.FormatFloat(h.Score, 'f', 2, 64),
			names[i],
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ExportRecordsCSV writes full records of one kind to w: the generic object
// export used by the admin screens. Fields are emitted in sorted order for
// determinism.
func (s *Service) ExportRecordsCSV(w io.Writer, kind string, ids []int64) error {
	st := s.rg.Store()
	if !st.HasTable(kind) {
		return fmt.Errorf("search: unknown kind %q", kind)
	}
	// Gather the union of fields over the exported rows. The records are
	// read by reference in one transaction; the refs stay valid snapshots
	// for the write loop below because committed records are immutable.
	fieldSet := make(map[string]bool)
	records := make([]store.Record, 0, len(ids))
	err := st.View(func(tx *store.Tx) error {
		for _, id := range ids {
			r, err := tx.GetRef(kind, id)
			if err != nil {
				return err
			}
			for k := range r {
				if k != store.IDField {
					fieldSet[k] = true
				}
			}
			records = append(records, r)
		}
		return nil
	})
	if err != nil {
		return err
	}
	fields := make([]string, 0, len(fieldSet))
	for f := range fieldSet {
		fields = append(fields, f)
	}
	sort.Strings(fields)

	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"id"}, fields...)); err != nil {
		return err
	}
	for _, r := range records {
		row := make([]string, 0, len(fields)+1)
		row = append(row, strconv.FormatInt(r.ID(), 10))
		for _, f := range fields {
			row = append(row, fmt.Sprint(r[f]))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
