package search

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/entity"
	"repro/internal/events"
	"repro/internal/model"
	"repro/internal/store"
	"repro/internal/vocab"
)

type fixture struct {
	svc     *Service
	db      *model.DB
	vocab   *vocab.Service
	s       *store.Store
	project int64
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	s := store.New()
	rg := entity.NewRegistry(s, events.NewBus())
	if err := model.RegisterSchema(rg); err != nil {
		t.Fatal(err)
	}
	db := model.NewDB(rg)
	vs := vocab.New(rg, model.AnnotatedFields(rg))
	svc := New(rg)
	fx := &fixture{svc: svc, db: db, vocab: vs, s: s}
	err := s.Update(func(tx *store.Tx) error {
		var err error
		fx.project, err = db.CreateProject(tx, "setup", model.Project{
			Name: "p1000", Description: "Plant light response study",
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return fx
}

func (fx *fixture) addSample(t *testing.T, s model.Sample) int64 {
	t.Helper()
	s.Project = fx.project
	var id int64
	err := fx.s.Update(func(tx *store.Tx) error {
		var err error
		id, err = fx.db.CreateSample(tx, "alice", s)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestTokenize(t *testing.T) {
	got := Tokenize("The Arabidopsis-Thaliana light/dark experiment 42!")
	want := []string{"arabidopsis", "thaliana", "light", "dark", "experiment", "42"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
	if len(Tokenize("a I of the")) != 0 {
		t.Error("stopwords/short tokens survived")
	}
}

func TestParseQuery(t *testing.T) {
	q := ParseQuery("kind:sample species:Arabidopsis light OR dark")
	if len(q.Kinds) != 1 || q.Kinds[0] != "sample" {
		t.Errorf("kinds = %v", q.Kinds)
	}
	if len(q.FieldTerms) != 1 || q.FieldTerms[0].Field != "species" || q.FieldTerms[0].Term != "arabidopsis" {
		t.Errorf("field terms = %v", q.FieldTerms)
	}
	if len(q.Terms) != 2 || !q.Or {
		t.Errorf("terms = %v or=%v", q.Terms, q.Or)
	}
}

func TestQuickSearchFindsSample(t *testing.T) {
	fx := newFixture(t)
	id := fx.addSample(t, model.Sample{Name: "AT-light-1", Species: "Arabidopsis thaliana", Treatment: "light"})
	fx.addSample(t, model.Sample{Name: "mouse-1", Species: "Mus musculus"})
	hits, err := fx.svc.Search("alice", "arabidopsis")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Kind != model.KindSample || hits[0].ID != id {
		t.Fatalf("hits = %+v", hits)
	}
}

func TestSearchANDSemantics(t *testing.T) {
	fx := newFixture(t)
	both := fx.addSample(t, model.Sample{Name: "s1", Species: "Arabidopsis", Treatment: "lumen"})
	fx.addSample(t, model.Sample{Name: "s2", Species: "Arabidopsis", Treatment: "dusk"})
	hits, err := fx.svc.Search("", "arabidopsis lumen")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].ID != both {
		t.Fatalf("AND hits = %+v", hits)
	}
}

func TestSearchORSemantics(t *testing.T) {
	fx := newFixture(t)
	fx.addSample(t, model.Sample{Name: "s1", Treatment: "lumen"})
	fx.addSample(t, model.Sample{Name: "s2", Treatment: "dusk"})
	hits, err := fx.svc.Search("", "lumen OR dusk")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("OR hits = %+v", hits)
	}
}

func TestFieldedSearch(t *testing.T) {
	fx := newFixture(t)
	// "lumen" appears in treatment of one sample and name of another.
	inTreatment := fx.addSample(t, model.Sample{Name: "s1", Treatment: "lumen"})
	fx.addSample(t, model.Sample{Name: "lumen-meter", Species: "none"})
	hits, err := fx.svc.Search("", "treatment:lumen")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].ID != inTreatment {
		t.Fatalf("fielded hits = %+v", hits)
	}
}

func TestKindFilter(t *testing.T) {
	fx := newFixture(t)
	fx.addSample(t, model.Sample{Name: "light-sample"})
	// The project description also contains "light".
	hits, err := fx.svc.Search("", "kind:project light")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Kind != model.KindProject {
		t.Fatalf("kind-filtered hits = %+v", hits)
	}
}

func TestIndexFollowsUpdatesAndDeletes(t *testing.T) {
	fx := newFixture(t)
	id := fx.addSample(t, model.Sample{Name: "before-rename"})
	if hits, _ := fx.svc.Search("", "before"); len(hits) != 1 {
		t.Fatal("initial index miss")
	}
	_ = fx.s.Update(func(tx *store.Tx) error {
		return fx.db.UpdateSample(tx, "alice", id, map[string]any{"name": "after-rename"})
	})
	if hits, _ := fx.svc.Search("", "before"); len(hits) != 0 {
		t.Error("stale term after update")
	}
	if hits, _ := fx.svc.Search("", "after"); len(hits) != 1 {
		t.Error("new term missing after update")
	}
	_ = fx.s.Update(func(tx *store.Tx) error {
		return fx.db.Registry().Delete(tx, model.KindSample, id, "alice")
	})
	if hits, _ := fx.svc.Search("", "after"); len(hits) != 0 {
		t.Error("deleted record still indexed")
	}
}

func TestRolledBackWritesNeverIndexed(t *testing.T) {
	fx := newFixture(t)
	boom := errors.New("boom")
	err := fx.s.Update(func(tx *store.Tx) error {
		_, err := fx.db.CreateSample(tx, "alice", model.Sample{
			Name: "phantom-sample", Project: fx.project,
		})
		if err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatal(err)
	}
	hits, _ := fx.svc.Search("", "phantom")
	if len(hits) != 0 {
		t.Errorf("rolled-back record indexed: %+v", hits)
	}
}

func TestAnnotationsSearchable(t *testing.T) {
	fx := newFixture(t)
	_ = fx.s.Update(func(tx *store.Tx) error {
		_, err := fx.vocab.AddTerm(tx, "alice", model.VocabDiseaseState, "Hopeless", false)
		return err
	})
	hits, err := fx.svc.Search("", "hopeless")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Kind != "annotation" {
		t.Fatalf("annotation hits = %+v", hits)
	}
}

func TestResourceContentSearchable(t *testing.T) {
	fx := newFixture(t)
	_ = fx.s.Update(func(tx *store.Tx) error {
		wid, err := fx.db.CreateWorkunit(tx, "alice", model.Workunit{Name: "wu", Project: fx.project})
		if err != nil {
			return err
		}
		_, err = fx.db.CreateDataResource(tx, "alice", model.DataResource{
			Name: "report.txt", Workunit: wid,
			Content: "Differential expression detected in circadian genes",
		})
		return err
	})
	hits, err := fx.svc.Search("", "circadian")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Kind != model.KindDataResource {
		t.Fatalf("content hits = %+v", hits)
	}
}

func TestEmptyQueryRejected(t *testing.T) {
	fx := newFixture(t)
	if _, err := fx.svc.Search("", "   "); !errors.Is(err, ErrEmptyQuery) {
		t.Errorf("empty query: %v", err)
	}
	if _, err := fx.svc.Search("", "a I"); !errors.Is(err, ErrEmptyQuery) {
		t.Errorf("stopword-only query: %v", err)
	}
}

func TestSearchHistory(t *testing.T) {
	fx := newFixture(t)
	fx.addSample(t, model.Sample{Name: "s"})
	for i := 0; i < HistoryLimit+5; i++ {
		_, _ = fx.svc.Search("alice", fmt.Sprintf("query%d", i))
	}
	h := fx.svc.History("alice")
	if len(h) != HistoryLimit {
		t.Fatalf("history length = %d", len(h))
	}
	if h[len(h)-1] != fmt.Sprintf("query%d", HistoryLimit+4) {
		t.Errorf("newest entry = %q", h[len(h)-1])
	}
	if len(fx.svc.History("bob")) != 0 {
		t.Error("history leaked across users")
	}
	// Failed (empty) queries are not recorded.
	before := len(fx.svc.History("alice"))
	_, _ = fx.svc.Search("alice", "")
	if len(fx.svc.History("alice")) != before {
		t.Error("empty query recorded in history")
	}
}

func TestSavedQueriesReexecuteAgainstLiveData(t *testing.T) {
	fx := newFixture(t)
	fx.addSample(t, model.Sample{Name: "light-1", Treatment: "light"})
	var qid int64
	_ = fx.s.Update(func(tx *store.Tx) error {
		var err error
		qid, err = fx.svc.SaveQuery(tx, "alice", "my lights", "treatment:light")
		return err
	})
	hits, err := fx.svc.RunSaved("alice", qid)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatalf("first run hits = %+v", hits)
	}
	// New matching object created after saving: the saved query sees it.
	fx.addSample(t, model.Sample{Name: "light-2", Treatment: "light"})
	hits, err = fx.svc.RunSaved("alice", qid)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("second run hits = %+v", hits)
	}
	// Listing.
	_ = fx.s.View(func(tx *store.Tx) error {
		qs, err := fx.svc.SavedQueries(tx, "alice")
		if err != nil {
			t.Fatal(err)
		}
		if len(qs) != 1 || qs[0].Name != "my lights" || qs[0].Query != "treatment:light" {
			t.Errorf("saved = %+v", qs)
		}
		return nil
	})
	// Validation.
	err = fx.s.Update(func(tx *store.Tx) error {
		_, err := fx.svc.SaveQuery(tx, "alice", "", "x")
		return err
	})
	if err == nil {
		t.Error("empty name accepted")
	}
}

func TestRankingPrefersHigherTF(t *testing.T) {
	fx := newFixture(t)
	weak := fx.addSample(t, model.Sample{Name: "luminescence"})
	strong := fx.addSample(t, model.Sample{
		Name: "luminescence", Treatment: "luminescence",
		Description: "luminescence luminescence luminescence",
	})
	hits, err := fx.svc.Search("", "luminescence")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 || hits[0].ID != strong || hits[1].ID != weak {
		t.Fatalf("ranking = %+v", hits)
	}
	if hits[0].Score <= hits[1].Score {
		t.Errorf("scores = %+v", hits)
	}
}

func TestExportCSV(t *testing.T) {
	fx := newFixture(t)
	fx.addSample(t, model.Sample{Name: "exported-sample", Species: "Arabidopsis"})
	hits, err := fx.svc.Search("", "arabidopsis")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fx.svc.ExportCSV(&buf, hits); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "kind,id,score,name\n") {
		t.Errorf("header = %q", out)
	}
	if !strings.Contains(out, "exported-sample") {
		t.Errorf("csv = %q", out)
	}
}

func TestExportRecordsCSV(t *testing.T) {
	fx := newFixture(t)
	a := fx.addSample(t, model.Sample{Name: "r1", Species: "X"})
	b := fx.addSample(t, model.Sample{Name: "r2", Species: "Y"})
	var buf bytes.Buffer
	if err := fx.svc.ExportRecordsCSV(&buf, model.KindSample, []int64{a, b}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	if !strings.HasPrefix(lines[0], "id,") {
		t.Errorf("header = %q", lines[0])
	}
	if err := fx.svc.ExportRecordsCSV(&buf, "nokind", nil); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestIndexedDocsAndReindexAll(t *testing.T) {
	fx := newFixture(t)
	fx.addSample(t, model.Sample{Name: "s1"})
	fx.addSample(t, model.Sample{Name: "s2"})
	n := fx.svc.IndexedDocs()
	if n < 3 { // project + 2 samples
		t.Errorf("IndexedDocs = %d", n)
	}
	fx.svc.ReindexAll()
	if fx.svc.IndexedDocs() != n {
		t.Error("ReindexAll changed document count")
	}
}

func TestPreexistingRecordsIndexedOnStartup(t *testing.T) {
	// Build data first, then create the search service: it must index
	// existing records.
	s := store.New()
	rg := entity.NewRegistry(s, events.NewBus())
	if err := model.RegisterSchema(rg); err != nil {
		t.Fatal(err)
	}
	db := model.NewDB(rg)
	_ = s.Update(func(tx *store.Tx) error {
		pid, _ := db.CreateProject(tx, "x", model.Project{Name: "preexisting"})
		_, err := db.CreateSample(tx, "x", model.Sample{Name: "old-sample", Project: pid})
		return err
	})
	svc := New(rg)
	hits, err := svc.Search("", "preexisting")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatalf("hits = %+v", hits)
	}
}
