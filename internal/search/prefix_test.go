package search

import (
	"testing"

	"repro/internal/model"
)

func TestPrefixQuery(t *testing.T) {
	fx := newFixture(t)
	fx.addSample(t, model.Sample{Name: "circadian-1"})
	fx.addSample(t, model.Sample{Name: "circulation-2"})
	fx.addSample(t, model.Sample{Name: "unrelated"})
	hits, err := fx.svc.Search("", "circ*")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("prefix hits = %+v", hits)
	}
}

func TestPrefixCombinesWithTerms(t *testing.T) {
	fx := newFixture(t)
	fx.addSample(t, model.Sample{Name: "circadian-1", Treatment: "lumen"})
	fx.addSample(t, model.Sample{Name: "circadian-2", Treatment: "dusk"})
	hits, err := fx.svc.Search("", "circ* lumen")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatalf("combined hits = %+v", hits)
	}
}

func TestPrefixParse(t *testing.T) {
	q := ParseQuery("arabid* treatment:light")
	if len(q.Prefixes) != 1 || q.Prefixes[0] != "arabid" {
		t.Errorf("prefixes = %v", q.Prefixes)
	}
	if len(q.Terms) != 0 {
		t.Errorf("terms = %v", q.Terms)
	}
}

func TestBareStarIsEmptyQuery(t *testing.T) {
	fx := newFixture(t)
	if _, err := fx.svc.Search("", "*"); err == nil {
		t.Error("bare star accepted")
	}
}
