// Package search implements B-Fabric's full-text search: an inverted index
// over the attributes and readable contents of all main objects, quick and
// advanced (fielded) queries, per-user search history, saved queries that
// re-execute against live data, and CSV export of result sets.
//
// The index lives in memory and follows the store: entity events mark
// documents dirty, and the dirty set is re-read from committed state before
// each query, so the index never reflects rolled-back transactions.
package search

import (
	"errors"
	"fmt"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"
	"unicode"

	"repro/internal/entity"
	"repro/internal/events"
	"repro/internal/store"
)

// Hit is one search result.
type Hit struct {
	// Kind and ID identify the matching object.
	Kind string
	ID   int64
	// Score is the TF-based relevance score (higher is better).
	Score float64
}

// docKey encodes (kind, id) as the index document key.
func docKey(kind string, id int64) string { return kind + ":" + strconv.FormatInt(id, 10) }

func parseDocKey(key string) (string, int64) {
	i := strings.LastIndexByte(key, ':')
	id, _ := strconv.ParseInt(key[i+1:], 10, 64)
	return key[:i], id
}

// Service is the search engine.
type Service struct {
	rg *entity.Registry

	// flushMu serializes Flush cycles end to end (drain, barrier, read,
	// apply) so two concurrent flushes cannot apply reads of the same
	// document out of order. It is never taken while mu is held or inside
	// a store transaction.
	flushMu sync.Mutex

	mu sync.Mutex
	// terms maps term -> docKey -> term frequency.
	terms map[string]map[string]int
	// fields maps "field\x00term" -> docKey -> tf, for fielded queries.
	fields map[string]map[string]int
	// docs maps docKey -> the postings it contributed, for removal.
	docs map[string]docPostings
	// dirty is the set of documents awaiting (re-)indexing.
	dirty map[string]bool
	// history maps login -> most recent queries, newest last.
	history map[string][]string
}

type docPostings struct {
	terms  map[string]int
	fields map[string]int
}

// HistoryLimit caps the per-user search history length.
const HistoryLimit = 20

// savedTable persists saved queries.
const savedTable = "saved_query"

// SavedQuery is a stored, re-executable query.
type SavedQuery struct {
	ID    int64
	Name  string
	Owner string
	Query string
}

// ErrEmptyQuery is returned for queries with no usable terms.
var ErrEmptyQuery = errors.New("empty query")

// New creates the search service and subscribes it to entity events on the
// registry's bus. Existing records are marked dirty so the first query
// indexes them.
func New(rg *entity.Registry) *Service {
	s := &Service{
		rg:      rg,
		terms:   make(map[string]map[string]int),
		fields:  make(map[string]map[string]int),
		docs:    make(map[string]docPostings),
		dirty:   make(map[string]bool),
		history: make(map[string][]string),
	}
	st := rg.Store()
	st.EnsureTable(savedTable)
	if !st.HasTable(savedTable + "_marker") {
		_ = st.CreateIndex(savedTable, "owner", false)
		st.EnsureTable(savedTable + "_marker")
	}
	rg.Bus().Subscribe("", s.onEvent)
	s.ReindexAll()
	return s
}

// onEvent marks the touched document(s) dirty. It deliberately does not
// read the records: the event fires inside an uncommitted transaction, and
// the flush re-reads committed state later. A coalesced batch event marks
// all of its documents under one lock acquisition, so a bulk commit costs
// the indexer one mutex round instead of one per entity.
func (s *Service) onEvent(ev events.Event) error {
	if ev.Kind == "" || (ev.ID == 0 && ev.Items == nil) {
		return nil
	}
	switch {
	case strings.HasSuffix(ev.Topic, ".created"),
		strings.HasSuffix(ev.Topic, ".updated"),
		strings.HasSuffix(ev.Topic, ".deleted"),
		strings.HasSuffix(ev.Topic, ".released"),
		strings.HasSuffix(ev.Topic, ".merged"):
		s.mu.Lock()
		if ev.Items != nil {
			for _, it := range ev.Items {
				if it.ID != 0 {
					s.dirty[docKey(ev.Kind, it.ID)] = true
				}
			}
		} else {
			s.dirty[docKey(ev.Kind, ev.ID)] = true
		}
		s.mu.Unlock()
	}
	return nil
}

// ReindexAll marks every record of every registered kind (and the
// annotation table) dirty, forcing a full rebuild on the next query. Keys
// are gathered with zero-copy scans before the service mutex is taken, so
// the store is never locked while s.mu is held.
func (s *Service) ReindexAll() {
	st := s.rg.Store()
	kinds := append(s.rg.Kinds(), "annotation")
	var keys []string
	for _, kind := range kinds {
		if !st.HasTable(kind) {
			continue
		}
		_ = st.View(func(tx *store.Tx) error {
			return tx.ScanRef(kind, func(r store.Record) bool {
				keys = append(keys, docKey(kind, r.ID()))
				return true
			})
		})
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, k := range keys {
		s.dirty[k] = true
	}
}

// Flush applies all pending index updates incrementally, re-reading only the
// dirty documents from committed state. Queries call it implicitly.
//
// The read side is zero-copy: dirty keys are grouped by kind and fetched
// with GetRef in one read transaction per kind. Because committed records
// are immutable, the references stay consistent snapshots while the
// postings are rebuilt after the transaction ends, without ever blocking
// the store's writers.
func (s *Service) Flush() {
	// One flush cycle at a time: a document re-dirtied while this flush is
	// reading is drained by the next flush, which necessarily reads newer
	// state, so index applies can never go backwards.
	s.flushMu.Lock()
	defer s.flushMu.Unlock()

	s.mu.Lock()
	if len(s.dirty) == 0 {
		s.mu.Unlock()
		return
	}
	pending := make([]string, 0, len(s.dirty))
	for k := range s.dirty {
		pending = append(pending, k)
	}
	s.dirty = make(map[string]bool)
	s.mu.Unlock()
	sort.Strings(pending) // deterministic order, grouped by kind

	// Dirty marks arrive from entity events raised inside still-open write
	// transactions. Under MVCC a read transaction no longer waits for
	// in-flight writers, so without a handshake this flush could pin a
	// version that predates the commit that produced a drained mark — and
	// that document would stay stale with its mark already consumed.
	// Barrier returns once every write transaction in flight at the drain
	// has committed or rolled back; the reads below then pin a version
	// that includes them all.
	s.rg.Store().Barrier()

	type dirtyDoc struct {
		key  string
		kind string
		rec  store.Record // nil: document deleted, drop its postings
	}
	docs := make([]dirtyDoc, len(pending))
	st := s.rg.Store()
	for start := 0; start < len(pending); {
		kind, _ := parseDocKey(pending[start])
		end := start
		for end < len(pending) {
			if k, _ := parseDocKey(pending[end]); k != kind {
				break
			}
			end++
		}
		if st.HasTable(kind) {
			_ = st.View(func(tx *store.Tx) error {
				for i := start; i < end; i++ {
					_, id := parseDocKey(pending[i])
					rec, err := tx.GetRef(kind, id)
					if err != nil {
						rec = nil
					}
					docs[i] = dirtyDoc{key: pending[i], kind: kind, rec: rec}
				}
				return nil
			})
		} else {
			for i := start; i < end; i++ {
				docs[i] = dirtyDoc{key: pending[i], kind: kind}
			}
		}
		start = end
	}

	s.mu.Lock()
	for _, d := range docs {
		s.removeDoc(d.key)
		if d.rec != nil {
			s.indexDoc(d.key, d.kind, d.rec)
		}
	}
	s.mu.Unlock()
}

// removeDoc drops a document's postings. Caller holds s.mu.
func (s *Service) removeDoc(key string) {
	dp, ok := s.docs[key]
	if !ok {
		return
	}
	for term := range dp.terms {
		if posting := s.terms[term]; posting != nil {
			delete(posting, key)
			if len(posting) == 0 {
				delete(s.terms, term)
			}
		}
	}
	for ft := range dp.fields {
		if posting := s.fields[ft]; posting != nil {
			delete(posting, key)
			if len(posting) == 0 {
				delete(s.fields, ft)
			}
		}
	}
	delete(s.docs, key)
}

// indexDoc adds a document's postings. Caller holds s.mu.
func (s *Service) indexDoc(key, kind string, rec store.Record) {
	dp := docPostings{terms: make(map[string]int), fields: make(map[string]int)}
	for field, v := range rec {
		if field == store.IDField {
			continue
		}
		var text string
		switch x := v.(type) {
		case string:
			text = x
		case []string:
			text = strings.Join(x, " ")
		default:
			continue
		}
		for _, tok := range Tokenize(text) {
			dp.terms[tok]++
			dp.fields[field+"\x00"+tok]++
		}
	}
	if len(dp.terms) == 0 {
		return
	}
	for term, tf := range dp.terms {
		posting := s.terms[term]
		if posting == nil {
			posting = make(map[string]int)
			s.terms[term] = posting
		}
		posting[key] = tf
	}
	for ft, tf := range dp.fields {
		posting := s.fields[ft]
		if posting == nil {
			posting = make(map[string]int)
			s.fields[ft] = posting
		}
		posting[key] = tf
	}
	s.docs[key] = dp
}

// stopwords excluded from the index and from queries.
var stopwords = map[string]bool{
	"the": true, "a": true, "an": true, "of": true, "and": true,
	"or": true, "in": true, "on": true, "to": true, "is": true,
	"for": true, "with": true,
}

// Tokenize lower-cases text and splits it into index terms, dropping
// one-character tokens and stopwords.
func Tokenize(text string) []string {
	fields := strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
	out := fields[:0]
	for _, f := range fields {
		if len(f) < 2 || stopwords[f] {
			continue
		}
		out = append(out, f)
	}
	return out
}

// Query is a parsed search query.
type Query struct {
	// Terms are bare terms (ANDed).
	Terms []string
	// Prefixes are bare prefix terms ("circa*"), each matching any
	// indexed term with that prefix.
	Prefixes []string
	// FieldTerms are field-scoped terms "field:term" (ANDed).
	FieldTerms []struct{ Field, Term string }
	// Kinds restricts results to these kinds, if non-empty.
	Kinds []string
	// Or switches term combination from AND to OR.
	Or bool
}

// ParseQuery parses the portal's query syntax:
//
//	light treatment            — documents containing both terms
//	species:arabidopsis        — fielded term
//	kind:sample light          — restrict to sample objects
//	light OR dark              — OR combination
//	arabid*                    — prefix match
func ParseQuery(q string) Query {
	var out Query
	for _, raw := range strings.Fields(q) {
		if raw == "OR" {
			out.Or = true
			continue
		}
		lower := strings.ToLower(raw)
		if strings.HasPrefix(lower, "kind:") {
			out.Kinds = append(out.Kinds, strings.TrimPrefix(lower, "kind:"))
			continue
		}
		if i := strings.IndexByte(raw, ':'); i > 0 {
			field := strings.ToLower(raw[:i])
			for _, tok := range Tokenize(raw[i+1:]) {
				out.FieldTerms = append(out.FieldTerms, struct{ Field, Term string }{field, tok})
			}
			continue
		}
		if strings.HasSuffix(raw, "*") {
			for _, tok := range Tokenize(strings.TrimSuffix(raw, "*")) {
				out.Prefixes = append(out.Prefixes, tok)
			}
			continue
		}
		out.Terms = append(out.Terms, Tokenize(raw)...)
	}
	return out
}

// Search runs a query string and returns ranked hits. The login, if
// non-empty, gets the query appended to its search history.
func (s *Service) Search(login, query string) ([]Hit, error) {
	q := ParseQuery(query)
	if len(q.Terms) == 0 && len(q.FieldTerms) == 0 && len(q.Prefixes) == 0 {
		return nil, fmt.Errorf("search: %q: %w", query, ErrEmptyQuery)
	}
	s.Flush()
	if login != "" {
		s.mu.Lock()
		h := append(s.history[login], query)
		if len(h) > HistoryLimit {
			h = h[len(h)-HistoryLimit:]
		}
		s.history[login] = h
		s.mu.Unlock()
	}

	s.mu.Lock()
	defer s.mu.Unlock()

	// Gather per-constraint posting sets.
	var postings []map[string]int
	for _, t := range q.Terms {
		postings = append(postings, s.terms[t])
	}
	for _, ft := range q.FieldTerms {
		postings = append(postings, s.fields[ft.Field+"\x00"+ft.Term])
	}
	for _, prefix := range q.Prefixes {
		// A prefix constraint is the union of the postings of every
		// indexed term sharing the prefix.
		merged := make(map[string]int)
		for term, posting := range s.terms {
			if !strings.HasPrefix(term, prefix) {
				continue
			}
			for key, tf := range posting {
				merged[key] += tf
			}
		}
		postings = append(postings, merged)
	}

	kindOK := func(kind string) bool {
		if len(q.Kinds) == 0 {
			return true
		}
		for _, k := range q.Kinds {
			if k == kind {
				return true
			}
		}
		return false
	}

	var hits []Hit
	if q.Or {
		scores := make(map[string]float64)
		for _, p := range postings {
			for key, tf := range p {
				scores[key] += float64(tf)
			}
		}
		hits = make([]Hit, 0, len(scores))
		for key, score := range scores {
			kind, id := parseDocKey(key)
			if !kindOK(kind) {
				continue
			}
			hits = append(hits, Hit{Kind: kind, ID: id, Score: score})
		}
	} else {
		// AND: walk the smallest posting list and probe the others directly,
		// accumulating matches into the hit slice without an intermediate
		// scores map.
		sort.Slice(postings, func(i, j int) bool { return len(postings[i]) < len(postings[j]) })
		if len(postings) == 0 || len(postings[0]) == 0 {
			return nil, nil
		}
		hits = make([]Hit, 0, len(postings[0]))
		for key, tf := range postings[0] {
			score := float64(tf)
			matched := true
			for _, p := range postings[1:] {
				tf2, ok := p[key]
				if !ok {
					matched = false
					break
				}
				score += float64(tf2)
			}
			if !matched {
				continue
			}
			kind, id := parseDocKey(key)
			if !kindOK(kind) {
				continue
			}
			hits = append(hits, Hit{Kind: kind, ID: id, Score: score})
		}
	}
	slices.SortFunc(hits, func(a, b Hit) int {
		if a.Score != b.Score {
			if a.Score > b.Score {
				return -1
			}
			return 1
		}
		if c := strings.Compare(a.Kind, b.Kind); c != 0 {
			return c
		}
		if a.ID != b.ID {
			if a.ID < b.ID {
				return -1
			}
			return 1
		}
		return 0
	})
	return hits, nil
}

// History returns the login's recent queries, newest last.
func (s *Service) History(login string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.history[login]...)
}

// SaveQuery persists a named query for later reuse.
func (s *Service) SaveQuery(tx *store.Tx, owner, name, query string) (int64, error) {
	if name == "" || query == "" {
		return 0, fmt.Errorf("search: empty name or query")
	}
	return tx.Insert(savedTable, store.Record{
		"name": name, "owner": owner, "query": query,
	})
}

// SavedQueries lists the owner's saved queries in id order.
func (s *Service) SavedQueries(tx *store.Tx, owner string) ([]SavedQuery, error) {
	rs, err := tx.FindRef(savedTable, "owner", owner)
	if err != nil {
		return nil, err
	}
	out := make([]SavedQuery, 0, len(rs))
	for _, r := range rs {
		out = append(out, SavedQuery{
			ID: r.ID(), Name: r.String("name"),
			Owner: r.String("owner"), Query: r.String("query"),
		})
	}
	return out, nil
}

// RunSaved executes a saved query by id. Per the paper, the invocation
// "will of course include all objects satisfying the query at run-time".
// It opens its own read transaction (do not call it with a transaction
// already held: the implicit index flush reads committed state).
func (s *Service) RunSaved(login string, id int64) ([]Hit, error) {
	r, err := s.rg.Store().Get(savedTable, id)
	if err != nil {
		return nil, err
	}
	return s.Search(login, r.String("query"))
}

// IndexedDocs returns the number of indexed documents (after a flush);
// exposed for monitoring and tests.
func (s *Service) IndexedDocs() int {
	s.Flush()
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.docs)
}
