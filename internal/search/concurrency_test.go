package search

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/store"
)

// TestConcurrentSearchAndWrites hammers the zero-copy flush path (dirty-doc
// reads via GetRef, postings rebuilt outside the store lock) against
// committing writers; run with -race. Results only assert internal
// consistency, since the doc set moves under the queries.
func TestConcurrentSearchAndWrites(t *testing.T) {
	fx := newFixture(t)
	const (
		writers = 2
		seekers = 4
		rounds  = 50
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				err := fx.s.Update(func(tx *store.Tx) error {
					_, err := fx.db.CreateSample(tx, "writer", model.Sample{
						Name:        fmt.Sprintf("racer-%d-%d", w, i),
						Project:     fx.project,
						Description: "arabidopsis racer replicate",
					})
					return err
				})
				if err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < seekers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				hits, err := fx.svc.Search("", "racer")
				if err != nil {
					t.Errorf("seeker %d: %v", r, err)
					return
				}
				for _, h := range hits {
					if h.Kind == "" || h.ID == 0 || h.Score <= 0 {
						t.Errorf("seeker %d: malformed hit %+v", r, h)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()

	// After the dust settles the index must agree with committed state.
	hits, err := fx.svc.Search("", "racer")
	if err != nil {
		t.Fatal(err)
	}
	if want := writers * rounds; len(hits) != want {
		t.Fatalf("final hits = %d, want %d", len(hits), want)
	}
}
