package repl

import (
	"fmt"
)

// Promotion describes a completed failover: the epoch the promoted node
// now fences with and the committed seq its new timeline starts from.
type Promotion struct {
	// Epoch is the new replication epoch — strictly greater than both the
	// follower's own and the last epoch its primary advertised.
	Epoch uint64 `json:"epoch"`
	// LastApplied is the committed seq at promotion: the exact prefix of
	// the old primary's history this node carries into the new epoch.
	// Writes the old primary acknowledged beyond it (shipped or not) are
	// not part of the new timeline.
	LastApplied uint64 `json:"lastApplied"`
}

// Promote turns this follower into a primary, fenced against its old
// timeline. In order: replication is stopped (Close — no frame can land
// mid-promotion), the epoch is durably advanced past both the local one
// and the last epoch the primary advertised, and only then is the write
// gate opened (SetReplica(false)). The ordering is the guarantee: a
// crash anywhere in between recovers either as a replica at the old
// epoch or as a not-yet-writable node at the new one — never as a
// writable primary holding a stale fencing token, which is how
// split-brain histories merge.
//
// If the epoch cannot be persisted the store stays a replica and the
// promotion fails; retry on a healthy node instead.
//
// The promoted store serves writes immediately. If a shipper
// (repl.Server) is running on this node it keeps streaming seamlessly —
// commits of the new epoch ride the same feed — but call its Disconnect
// so downstream followers re-handshake and adopt the new epoch now. The
// old primary, if it resurrects, is refused by the handshake
// (ErrFencedEpoch) and must rejoin as a follower via snapshot resync.
func (f *Follower) Promote() (Promotion, error) {
	if !f.s.IsReplica() {
		return Promotion{}, fmt.Errorf("repl: promote: store is not a replica")
	}
	f.Close() // idempotent; returns once the run loop has exited
	floor := f.Status().PrimaryEpoch
	epoch, err := f.s.AdvanceEpoch(floor)
	if err != nil {
		return Promotion{}, fmt.Errorf("repl: promote: %w", err)
	}
	f.s.SetReplica(false)
	// The run loop is done (Close waited for it), so the single-writer
	// rule on setStatus passes to us.
	f.setStatus(func(st *Status) {
		st.Connected = false
		st.Fenced = false
	})
	f.logf("repl: promoted to primary at epoch %d (seq %d)", epoch, f.s.CommitSeq())
	return Promotion{Epoch: epoch, LastApplied: f.s.CommitSeq()}, nil
}
