package repl

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
)

// TestFollowerScanPaginationStress is the isolation half of the chaos
// campaign, meant to run under -race: a primary writer atomically
// rewrites every row to a new generation each commit while the frames
// stream over TCP into a follower, and reader goroutines paginate the
// follower with ScanRange using one View transaction per page. The
// replicated MVCC contract under that race:
//
//   - every page is internally consistent: a single generation across
//     all rows it returns (one snapshot per page, no torn reads while
//     ApplyReplicated installs new versions);
//   - each reader's asOf (tx.Snapshot()) never moves backwards across
//     pages, and neither does the observed generation — replicated
//     reads are monotonic per client.
func TestFollowerScanPaginationStress(t *testing.T) {
	const (
		rowN    = 8
		pageSz  = 3
		readers = 4
	)
	primary := newPrimary(t)
	ids := make([]int64, rowN)
	for i := range ids {
		ids[i] = putAcct(t, primary, fmt.Sprintf("row%d", i), 0)
	}
	_, addr := startServer(t, primary)
	fstore := store.New()
	mustSchema(t, fstore)
	f := startFollower(t, fstore, addr)
	waitConnected(t, f)
	// Readers demand full pages, so the seed rows must have landed.
	if err := f.WaitForSeq(primary.CommitSeq(), 10*time.Second); err != nil {
		t.Fatal(err)
	}

	dur := 1500 * time.Millisecond
	if testing.Short() {
		dur = 400 * time.Millisecond
	}
	deadline := time.Now().Add(dur)

	stop := make(chan struct{})
	writerErr := make(chan error, 1)
	go func() {
		defer close(writerErr)
		for gen := int64(1); ; gen++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := primary.Update(func(tx *store.Tx) error {
				for i, id := range ids {
					r := store.Record{"login": fmt.Sprintf("row%d", i), "gen": gen}
					if err := tx.Put("acct", id, r); err != nil {
						return err
					}
				}
				return nil
			}); err != nil {
				writerErr <- err
				return
			}
		}
	}()

	errs := make(chan error, readers)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var lastSnap uint64
			lastGen := int64(-1)
			pages := 0
			for time.Now().Before(deadline) {
				for from := int64(1); from <= rowN; from += pageSz {
					to := from + pageSz - 1
					if to > rowN {
						to = rowN
					}
					err := fstore.View(func(tx *store.Tx) error {
						snap := tx.Snapshot()
						if snap < lastSnap {
							return fmt.Errorf("reader %d: asOf went backwards: %d after %d", r, snap, lastSnap)
						}
						lastSnap = snap
						pageGen := int64(-1)
						n := 0
						if err := tx.ScanRange("acct", from, to, func(rec store.Record) bool {
							n++
							g := rec.Int("gen")
							if pageGen == -1 {
								pageGen = g
							} else if g != pageGen {
								pageGen = -2
							}
							return pageGen != -2
						}); err != nil {
							return err
						}
						if pageGen == -2 {
							return fmt.Errorf("reader %d: torn page %d-%d: mixed generations in one snapshot", r, from, to)
						}
						if n != int(to-from+1) {
							return fmt.Errorf("reader %d: page %d-%d returned %d rows, want %d", r, from, to, n, to-from+1)
						}
						if pageGen < lastGen {
							return fmt.Errorf("reader %d: generation went backwards across pages: %d after %d", r, pageGen, lastGen)
						}
						lastGen = pageGen
						return nil
					})
					if err != nil {
						errs <- err
						return
					}
					pages++
				}
			}
			if pages == 0 {
				errs <- fmt.Errorf("reader %d read no pages", r)
			}
		}(r)
	}

	wg.Wait()
	close(stop)
	if err, ok := <-writerErr; ok && err != nil {
		t.Fatalf("writer: %v", err)
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
