package repl

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/store"
)

// newPrimary returns an in-memory store with the reference schema.
func newPrimary(t *testing.T) *store.Store {
	t.Helper()
	s := store.New()
	mustSchema(t, s)
	return s
}

func mustSchema(t *testing.T, s *store.Store) {
	t.Helper()
	if err := s.CreateTable("acct"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateIndex("acct", "login", true); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable("feed"); err != nil {
		t.Fatal(err)
	}
}

// putAcct commits one row through the primary's normal write path.
func putAcct(t *testing.T, s *store.Store, login string, gen int64) int64 {
	t.Helper()
	var id int64
	err := s.Update(func(tx *store.Tx) error {
		var err error
		id, err = tx.Insert("acct", store.Record{"login": login, "gen": gen})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// assertConverged asserts the two stores serialize to identical bytes —
// same tables, rows, indexes and seq.
func assertConverged(t *testing.T, primary, follower *store.Store) {
	t.Helper()
	var pb, fb bytes.Buffer
	if err := primary.Save(&pb); err != nil {
		t.Fatal(err)
	}
	if err := follower.Save(&fb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pb.Bytes(), fb.Bytes()) {
		t.Fatalf("store states diverged: primary %d bytes (seq %d), follower %d bytes (seq %d)",
			pb.Len(), primary.CommitSeq(), fb.Len(), follower.CommitSeq())
	}
}

func startServer(t *testing.T, s *store.Store) (*Server, string) {
	t.Helper()
	srv := NewServer(s)
	srv.Heartbeat = 50 * time.Millisecond
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

func waitConnected(t *testing.T, f *Follower) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !f.Status().Connected {
		if time.Now().After(deadline) {
			t.Fatal("follower never connected")
		}
		time.Sleep(time.Millisecond)
	}
}

func startFollower(t *testing.T, s *store.Store, addr string) *Follower {
	t.Helper()
	s.SetReplica(true)
	f := NewFollower(s, addr, FollowerOptions{Logf: t.Logf})
	f.Start()
	t.Cleanup(f.Close)
	return f
}

// TestLiveStream covers the live feed: a follower that joins an empty
// primary sees every subsequent commit and converges byte-for-byte.
func TestLiveStream(t *testing.T) {
	primary := newPrimary(t)
	_, addr := startServer(t, primary)

	fstore := store.New()
	mustSchema(t, fstore)
	f := startFollower(t, fstore, addr)

	for i := 0; i < 20; i++ {
		putAcct(t, primary, fmt.Sprintf("u%d", i), 1)
	}
	if err := f.WaitForSeq(primary.CommitSeq(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	assertConverged(t, primary, fstore)

	if got := fstore.Count("acct"); got != 20 {
		t.Fatalf("follower acct count = %d, want 20", got)
	}
}

// TestLateJoinerSnapshot covers snapshot catch-up: the primary has
// history the follower never saw and (being in-memory) no log to serve
// it from, so the handshake must fall back to a full snapshot.
func TestLateJoinerSnapshot(t *testing.T) {
	primary := newPrimary(t)
	for i := 0; i < 30; i++ {
		putAcct(t, primary, fmt.Sprintf("u%d", i), 1)
	}
	_, addr := startServer(t, primary)

	fstore := store.New()
	mustSchema(t, fstore)
	f := startFollower(t, fstore, addr)
	if err := f.WaitForSeq(primary.CommitSeq(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	assertConverged(t, primary, fstore)

	// And the live feed still works after the snapshot.
	putAcct(t, primary, "late", 2)
	if err := f.WaitForSeq(primary.CommitSeq(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	assertConverged(t, primary, fstore)
}

// TestOffsetCatchUp covers log-offset catch-up: a durable primary still
// holds the frames a rejoining follower missed, so no snapshot is
// needed; the follower replays the gap from the shipped WAL frames.
func TestOffsetCatchUp(t *testing.T) {
	primary, err := store.Open(t.TempDir(), store.DurabilityOptions{Sync: store.SyncOff, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	mustSchema(t, primary)
	for i := 0; i < 10; i++ {
		putAcct(t, primary, fmt.Sprintf("u%d", i), 1)
	}
	_, addr := startServer(t, primary)

	fstore := store.New()
	mustSchema(t, fstore)
	f := startFollower(t, fstore, addr)
	if err := f.WaitForSeq(primary.CommitSeq(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	assertConverged(t, primary, fstore)
	st := f.Status()
	if st.Resyncs != 0 {
		t.Fatalf("offset catch-up took %d snapshot resyncs, want 0", st.Resyncs)
	}
}

// TestReplicaWriteGate: a store in replica mode refuses local writes
// with ErrReplica while reads keep working.
func TestReplicaWriteGate(t *testing.T) {
	s := store.New()
	mustSchema(t, s)
	s.SetReplica(true)
	err := s.Update(func(tx *store.Tx) error {
		_, err := tx.Insert("acct", store.Record{"login": "x"})
		return err
	})
	if !errors.Is(err, store.ErrReplica) {
		t.Fatalf("Update on replica = %v, want ErrReplica", err)
	}
	tx, err := s.Begin(false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert("acct", store.Record{"login": "y"}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, store.ErrReplica) {
		t.Fatalf("optimistic Commit on replica = %v, want ErrReplica", err)
	}
	if err := s.View(func(tx *store.Tx) error { return nil }); err != nil {
		t.Fatalf("View on replica: %v", err)
	}
}

// TestHeartbeatStaleness: with no writes, heartbeats keep advancing
// LastContact and carry the primary's head.
func TestHeartbeatStaleness(t *testing.T) {
	primary := newPrimary(t)
	putAcct(t, primary, "a", 1)
	_, addr := startServer(t, primary)

	fstore := store.New()
	mustSchema(t, fstore)
	f := startFollower(t, fstore, addr)
	if err := f.WaitForSeq(primary.CommitSeq(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	first := f.Status()
	time.Sleep(150 * time.Millisecond)
	second := f.Status()
	if !second.LastContact.After(first.LastContact) {
		t.Fatalf("heartbeats did not advance LastContact: %v -> %v", first.LastContact, second.LastContact)
	}
	if second.PrimarySeq != primary.CommitSeq() {
		t.Fatalf("PrimarySeq = %d, want %d", second.PrimarySeq, primary.CommitSeq())
	}
	if second.Lag() != 0 {
		t.Fatalf("Lag = %d, want 0", second.Lag())
	}
}

// TestDivergenceResync: a follower whose state has diverged (extra local
// row violating a unique index the primary later reuses) detects the
// apply failure and recovers through a snapshot resync instead of
// serving phantom state.
func TestDivergenceResync(t *testing.T) {
	primary := newPrimary(t)
	putAcct(t, primary, "shared", 1)
	_, addr := startServer(t, primary)

	// Diverge the follower BEFORE replica mode: a row under a login the
	// primary will also insert, so the replicated frame hits the unique
	// index.
	fstore := store.New()
	mustSchema(t, fstore)
	if err := fstore.Update(func(tx *store.Tx) error {
		_, err := tx.Insert("acct", store.Record{"login": "taken", "gen": int64(99)})
		return err
	}); err != nil {
		t.Fatal(err)
	}

	f := startFollower(t, fstore, addr)
	// The follower is at seq 1 with different content; primary is at seq
	// 1 too, so the live feed simply continues — until the conflicting
	// frame arrives. Wait for the session so the frame travels the live
	// feed (a late handshake would catch up via snapshot and never hit
	// the conflict).
	waitConnected(t, f)
	putAcct(t, primary, "taken", 2)
	putAcct(t, primary, "after", 3)
	if err := f.WaitForSeq(primary.CommitSeq(), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	assertConverged(t, primary, fstore)
	if f.Status().Resyncs == 0 {
		t.Fatal("expected at least one snapshot resync after divergence")
	}
}

// TestFollowerChaining: a follower can itself ship frames (fan-out
// topology): primary -> mid -> leaf all converge.
func TestFollowerChaining(t *testing.T) {
	primary := newPrimary(t)
	_, addr := startServer(t, primary)

	mid := store.New()
	mustSchema(t, mid)
	fmid := startFollower(t, mid, addr)
	_, midAddr := startServer(t, mid)

	leaf := store.New()
	mustSchema(t, leaf)
	fleaf := startFollower(t, leaf, midAddr)

	for i := 0; i < 10; i++ {
		putAcct(t, primary, fmt.Sprintf("u%d", i), 1)
	}
	if err := fmid.WaitForSeq(primary.CommitSeq(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := fleaf.WaitForSeq(primary.CommitSeq(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	assertConverged(t, primary, mid)
	assertConverged(t, primary, leaf)
}
