package repl

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/store"
)

// TestKillNineFollowerConvergence proves the replication acceptance
// property end to end with a real process boundary: a follower process
// replicates from an in-parent primary, acknowledging each applied seq on
// stdout only after ApplyReplicated returned (SyncAlways: the frame is in
// its local WAL). The parent SIGKILLs it mid-stream — twice:
//
//  1. While the primary's WAL still holds everything, so the restarted
//     follower catches up via log offset.
//  2. After the primary snapshots and truncates its WAL, so offset
//     catch-up is impossible and the restarted follower must take the
//     full-snapshot path.
//
// After the final catch-up the parent SIGKILLs once more, recovers the
// follower's directory and requires it byte-identical to the primary's
// serialized state at the same seq.
//
// The child re-executes this test binary with BFREPL_CHILD set; see
// killNineFollowerChild below.
func TestKillNineFollowerConvergence(t *testing.T) {
	if os.Getenv("BFREPL_CHILD") == "1" {
		killNineFollowerChild()
		return
	}
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}

	primary, err := store.Open(t.TempDir(), store.DurabilityOptions{Sync: store.SyncOff, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	mustSchema(t, primary)
	_, addr := startServer(t, primary)
	followerDir := t.TempDir()

	next := int64(1)
	commitTo := func(n int64) {
		for ; next <= n; next++ {
			putAcct(t, primary, fmt.Sprintf("u%d", next), next)
		}
	}

	// Phase A: history exists before the follower ever joins; the child
	// catches up and follows live commits.
	commitTo(20)
	child := startKillChild(t, followerDir, addr)
	child.waitAck(t, 20)
	bg := make(chan struct{})
	go func() { commitTo(40); close(bg) }()
	child.waitAck(t, 25) // provably mid-stream
	child.kill(t)
	<-bg // the primary keeps committing past the corpse

	// Phase B: the primary's WAL still reaches back to the follower's
	// seq — the restarted child replays the gap from shipped frames.
	child = startKillChild(t, followerDir, addr)
	child.waitAck(t, 40)
	bg = make(chan struct{})
	go func() { commitTo(60); close(bg) }()
	child.waitAck(t, 45)
	child.kill(t)
	<-bg

	// Phase C: snapshot + truncation destroys the log the follower would
	// need; only the full-snapshot path can catch it up now.
	if err := primary.Snapshot(); err != nil {
		t.Fatal(err)
	}
	child = startKillChild(t, followerDir, addr)
	child.waitAck(t, 60)
	child.kill(t) // final kill -9: convergence must be ON DISK

	fs, err := store.Open(followerDir, store.DurabilityOptions{Sync: store.SyncAlways, SnapshotEvery: -1})
	if err != nil {
		t.Fatalf("recovering follower dir after kill -9: %v", err)
	}
	defer fs.Close()
	if err := ensureTestSchema(fs); err != nil {
		t.Fatal(err)
	}
	if got, want := fs.CommitSeq(), primary.CommitSeq(); got != want {
		t.Fatalf("recovered follower at seq %d, primary at %d", got, want)
	}
	assertConverged(t, primary, fs)
}

// ensureTestSchema registers the reference schema, tolerating prior
// registration (recovered directories may already carry parts of it).
func ensureTestSchema(s *store.Store) error {
	for _, tbl := range []string{"acct", "feed"} {
		if err := s.CreateTable(tbl); err != nil && !errors.Is(err, store.ErrExists) {
			return err
		}
	}
	if err := s.CreateIndex("acct", "login", true); err != nil && !errors.Is(err, store.ErrExists) {
		return err
	}
	return nil
}

// killChild is one run of the follower victim process.
type killChild struct {
	cmd  *exec.Cmd
	last atomic.Uint64 // highest seq the child acknowledged durable
	dead atomic.Bool
}

func startKillChild(t *testing.T, dir, addr string) *killChild {
	t.Helper()
	c := &killChild{}
	c.cmd = exec.Command(os.Args[0], "-test.run=TestKillNineFollowerConvergence")
	c.cmd.Env = append(os.Environ(), "BFREPL_CHILD=1", "BFREPL_DIR="+dir, "BFREPL_ADDR="+addr)
	c.cmd.Stderr = os.Stderr
	stdout, err := c.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if n, err := strconv.ParseUint(strings.TrimPrefix(line, "applied "), 10, 64); err == nil && strings.HasPrefix(line, "applied ") {
				c.last.Store(n)
			}
		}
		c.dead.Store(true)
	}()
	t.Cleanup(func() {
		if c.cmd.Process != nil {
			c.cmd.Process.Kill()
			c.cmd.Wait()
		}
	})
	return c
}

// waitAck blocks until the child has acknowledged at least seq.
func (c *killChild) waitAck(t *testing.T, seq uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for c.last.Load() < seq {
		if c.dead.Load() && c.last.Load() < seq {
			t.Fatalf("child died at ack %d, waiting for %d", c.last.Load(), seq)
		}
		if time.Now().After(deadline) {
			t.Fatalf("child stuck at ack %d, waiting for %d", c.last.Load(), seq)
		}
		time.Sleep(time.Millisecond)
	}
}

// kill delivers SIGKILL — no deferred cleanup, no final fsync, exactly
// like a crashed machine — and reaps the process (releasing its flock).
func (c *killChild) kill(t *testing.T) {
	t.Helper()
	if err := c.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	c.cmd.Wait()
}

// killNineFollowerChild is the victim: it opens the durable follower
// store named by BFREPL_DIR, follows BFREPL_ADDR, and prints "applied N"
// after each seq is applied (and, under SyncAlways, durable), until the
// parent kills it.
func killNineFollowerChild() {
	dir := os.Getenv("BFREPL_DIR")
	addr := os.Getenv("BFREPL_ADDR")
	s, err := store.Open(dir, store.DurabilityOptions{Sync: store.SyncAlways, SnapshotEvery: -1})
	if err != nil {
		fmt.Println("child open error:", err)
		os.Exit(1)
	}
	if err := ensureTestSchema(s); err != nil {
		fmt.Println("child schema error:", err)
		os.Exit(1)
	}
	s.SetReplica(true)
	f := NewFollower(s, addr, FollowerOptions{})
	f.Start()
	last := uint64(0)
	for {
		st := f.Status()
		if st.Degraded {
			fmt.Println("child degraded at", st.LastApplied)
			os.Exit(1)
		}
		if st.LastApplied > last {
			last = st.LastApplied
			fmt.Printf("applied %d\n", last) // os.Stdout is unbuffered
		}
		time.Sleep(time.Millisecond)
	}
}
