package repl

import (
	"fmt"
	"math/rand"
	"net"
	"os"
	"testing"
	"time"

	"repro/internal/repl/netchaos"
	"repro/internal/store"
)

// The promotion chaos campaign is the network-side sibling of the
// follower fault campaign: instead of a dying disk, a dying network —
// latency, throttling, torn connections, half-open stalls, and finally
// a full partition that kills the primary mid-load. Each scenario runs
// the complete failover story end to end:
//
//   - a durable primary and two followers replicate through netchaos
//     proxies while one seeded network fault fires mid-load;
//   - the primary is partitioned away and, as a zombie, keeps
//     acknowledging writes nobody will ever see again;
//   - one follower is promoted (epoch bump), starts its own timeline
//     and its own shipping feed;
//   - the surviving follower is re-pointed: fenced as stale, it
//     resyncs via snapshot and adopts the new epoch;
//   - the old primary resurrects from its own directory, is refused by
//     the handshake (typed ErrFencedEpoch at the protocol level), and
//     rejoins only through a wholesale snapshot resync.
//
// The asserted contract: zero phantom commits survive anywhere, every
// node's visible state is an exact committed prefix of its epoch's
// history, and after resync every node is byte-identical to the new
// primary — fencing token included.
//
// The default run covers a deterministic subset of scenarios so
// `go test ./...` always exercises the failover path; BFABRIC_CHAOS=full
// (make test-chaos) sweeps every scenario with seeded fault assignment
// (BFABRIC_CHAOS_SEED replays a sweep).

const (
	chaosPhase1N  = 6 // rows committed while the network is healthy
	chaosPhase2N  = 6 // rows committed while the seeded fault is live
	chaosPhantomN = 3 // rows the zombie primary acks after the partition
	chaosEpoch2N  = 2 // rows the promoted primary commits on its timeline

	// Disjoint n-ranges per timeline, so a phantom that leaked through
	// would be identifiable by content, not just by count: commit seqs
	// and row ids overlap across epochs by construction.
	chaosPhantomBase = int64(10_000)
	chaosEpoch2Base  = int64(20_000)
)

// chaosFollowerOptions are tuned for fast failure detection under a
// misbehaving network: short read timeout (heartbeats come every 50ms),
// tight reconnect backoff.
func chaosFollowerOptions(t *testing.T) FollowerOptions {
	return FollowerOptions{
		RetryMin:    5 * time.Millisecond,
		RetryMax:    100 * time.Millisecond,
		ReadTimeout: 400 * time.Millisecond,
		Logf:        t.Logf,
	}
}

func putSample(t *testing.T, s *store.Store, n int64) {
	t.Helper()
	if err := s.Update(func(tx *store.Tx) error {
		_, err := tx.Insert("sample", store.Record{"n": n})
		return err
	}); err != nil {
		t.Fatalf("insert sample n=%d: %v", n, err)
	}
}

// assertTimeline asserts the store holds exactly the rows in wantN, in
// insertion order under contiguous ids from 1 — the strongest possible
// "no phantoms, no gaps" statement for one node.
func assertTimeline(t *testing.T, s *store.Store, label string, wantN []int64) {
	t.Helper()
	if got := s.Count("sample"); got != len(wantN) {
		t.Fatalf("%s: row count = %d, want %d", label, got, len(wantN))
	}
	for i, n := range wantN {
		r, err := s.Get("sample", int64(i+1))
		if err != nil {
			t.Fatalf("%s: row id %d missing: %v", label, i+1, err)
		}
		if r.Int("n") != n {
			t.Fatalf("%s: row id %d carries n=%d, want %d", label, i+1, r.Int("n"), n)
		}
	}
}

// probeHandshake performs one raw protocol handshake against addr and
// returns the primary's reply, bypassing the Follower's retry loop so a
// test can observe the fence status itself.
func probeHandshake(t *testing.T, addr string, lastSeq, epoch uint64) (status byte, headSeq, primaryEpoch uint64) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatalf("probe dial %s: %v", addr, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if err := writeHello(conn, lastSeq, epoch, 0); err != nil {
		t.Fatalf("probe hello: %v", err)
	}
	status, headSeq, primaryEpoch, err = readHelloReply(conn)
	if err != nil {
		t.Fatalf("probe reply: %v", err)
	}
	return status, headSeq, primaryEpoch
}

// chaosScenario is one seeded point in the campaign: which network
// fault fires, on whose link, and after how many phase-2 commits.
type chaosScenario struct {
	fault    netchaos.Fault
	target   string // "A" or "B"
	injectAt int    // phase-2 commits before the fault fires
}

func (sc chaosScenario) label() string {
	return fmt.Sprintf("%s-on-%s-at-%d", sc.fault.Mode, sc.target, sc.injectAt)
}

// chaosModes is the deterministic fault table; the full sweep draws
// parameters from the seeded RNG instead.
var chaosModes = []netchaos.Fault{
	{Mode: netchaos.Latency, Delay: 15 * time.Millisecond},
	{Mode: netchaos.Throttle, Rate: 16 << 10},
	{Mode: netchaos.Torn, After: 600},
	{Mode: netchaos.HalfOpen},
}

func TestPromotionChaosCampaign(t *testing.T) {
	full := os.Getenv("BFABRIC_CHAOS") == "full"
	seed := int64(1)
	if env := os.Getenv("BFABRIC_CHAOS_SEED"); env != "" {
		fmt.Sscanf(env, "%d", &seed)
	}
	rng := rand.New(rand.NewSource(seed))

	// The full sweep covers every (mode, target) pair at seeded injection
	// points; the fast subset takes every Nth scenario plus the last, so
	// the default `go test` still crosses every fault mode once.
	total := 2 * len(chaosModes)
	var scenarios []chaosScenario
	for i := 0; i < total; i++ {
		sc := chaosScenario{fault: chaosModes[i%len(chaosModes)], target: "A", injectAt: i % chaosPhase2N}
		if i >= len(chaosModes) {
			sc.target = "B"
		}
		if full {
			sc.injectAt = rng.Intn(chaosPhase2N)
			switch sc.fault.Mode {
			case netchaos.Latency:
				sc.fault.Delay = time.Duration(5+rng.Intn(25)) * time.Millisecond
			case netchaos.Throttle:
				sc.fault.Rate = (4 + rng.Intn(28)) << 10
			case netchaos.Torn:
				sc.fault.After = int64(100 + rng.Intn(1500))
			}
		}
		scenarios = append(scenarios, sc)
	}
	if !full {
		var fast []chaosScenario
		for i := 0; i < len(scenarios); i += 3 {
			fast = append(fast, scenarios[i])
		}
		fast = append(fast, scenarios[len(scenarios)-1])
		scenarios = fast
	} else {
		t.Logf("full promotion chaos campaign: %d scenarios, seed %d (replay with BFABRIC_CHAOS_SEED)", total, seed)
	}

	for _, sc := range scenarios {
		t.Run(sc.label(), func(t *testing.T) { runPromotionScenario(t, sc) })
	}
}

func runPromotionScenario(t *testing.T, sc chaosScenario) {
	// The primary is durable (its directory is the zombie's body later)
	// and ships through per-follower netchaos proxies.
	pdir := t.TempDir()
	sP, err := openFollowerDir(pdir, nil)
	if err != nil {
		t.Fatal(err)
	}
	campaignSchema(t, sP)
	srvP, addrP := startServer(t, sP)

	pxA, err := netchaos.New(addrP)
	if err != nil {
		t.Fatal(err)
	}
	defer pxA.Close()
	pxB, err := netchaos.New(addrP)
	if err != nil {
		t.Fatal(err)
	}
	defer pxB.Close()
	faultProxy := pxA
	if sc.target == "B" {
		faultProxy = pxB
	}

	newChaosFollower := func(addr string) (*store.Store, *Follower) {
		s, err := openFollowerDir(t.TempDir(), nil)
		if err != nil {
			t.Fatal(err)
		}
		campaignSchema(t, s)
		s.SetReplica(true)
		f := NewFollower(s, addr, chaosFollowerOptions(t))
		f.Start()
		t.Cleanup(f.Close)
		return s, f
	}
	sA, fA := newChaosFollower(pxA.Addr())
	sB, fB := newChaosFollower(pxB.Addr())

	// Phase 1: healthy network.
	var epoch1Rows []int64
	for n := int64(1); n <= chaosPhase1N; n++ {
		putSample(t, sP, n)
		epoch1Rows = append(epoch1Rows, n)
	}
	for _, f := range []*Follower{fA, fB} {
		if err := f.WaitForSeq(sP.CommitSeq(), 10*time.Second); err != nil {
			t.Fatal(err)
		}
	}

	// Phase 2: the seeded fault fires mid-load on one follower's link.
	for i := 0; i < chaosPhase2N; i++ {
		if i == sc.injectAt {
			faultProxy.Set(sc.fault)
		}
		n := int64(chaosPhase1N + i + 1)
		putSample(t, sP, n)
		epoch1Rows = append(epoch1Rows, n)
	}
	faultProxy.Heal()
	for _, f := range []*Follower{fA, fB} {
		if err := f.WaitForSeq(sP.CommitSeq(), 20*time.Second); err != nil {
			t.Fatalf("catch-up after %s fault: %v", sc.fault.Mode, err)
		}
	}
	assertConverged(t, sP, sA)
	assertConverged(t, sP, sB)
	prePartitionSeq := sP.CommitSeq()

	// The partition: both followers lose the primary for good.
	pxA.Set(netchaos.Fault{Mode: netchaos.Partition})
	pxB.Set(netchaos.Fault{Mode: netchaos.Partition})

	// The zombie keeps acking writes into the void. Every one of these is
	// a phantom: durable on the old primary, seen by nobody else, doomed.
	for i := int64(1); i <= chaosPhantomN; i++ {
		putSample(t, sP, chaosPhantomBase+i)
	}
	if sP.CommitSeq() <= prePartitionSeq {
		t.Fatal("zombie primary did not advance past the partition point")
	}

	// Promote B. Its state must be the exact pre-partition prefix — the
	// phantom acks beyond it are not part of the new timeline.
	prom, err := fB.Promote()
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if prom.Epoch != 2 {
		t.Fatalf("promotion epoch = %d, want 2", prom.Epoch)
	}
	if prom.LastApplied != prePartitionSeq {
		t.Fatalf("promotion lastApplied = %d, want the pre-partition seq %d", prom.LastApplied, prePartitionSeq)
	}
	if sB.IsReplica() {
		t.Fatal("promoted store still refuses writes")
	}
	if sB.Epoch() != prom.Epoch {
		t.Fatalf("store epoch = %d after promotion, want %d", sB.Epoch(), prom.Epoch)
	}
	assertTimeline(t, sB, "promoted B", epoch1Rows)

	// The new timeline: B serves writes and ships its own feed.
	epoch2Rows := append([]int64(nil), epoch1Rows...)
	for i := int64(1); i <= chaosEpoch2N; i++ {
		putSample(t, sB, chaosEpoch2Base+i)
		epoch2Rows = append(epoch2Rows, chaosEpoch2Base+i)
	}
	_, addrB := startServer(t, sB)

	// Re-point the survivor. A is at epoch 1: the handshake fences it as
	// stale, it resyncs via snapshot and adopts epoch 2.
	fA.Close()
	fA2 := NewFollower(sA, addrB, chaosFollowerOptions(t))
	fA2.Start()
	t.Cleanup(fA2.Close)
	if err := fA2.WaitForSeq(sB.CommitSeq(), 20*time.Second); err != nil {
		t.Fatalf("re-pointed survivor never converged: %v", err)
	}
	if st := fA2.Status(); st.Resyncs == 0 {
		t.Fatal("re-pointed epoch-1 survivor converged without a snapshot resync — the fence did not fire")
	}
	if sA.Epoch() != prom.Epoch {
		t.Fatalf("survivor epoch = %d after resync, want %d", sA.Epoch(), prom.Epoch)
	}
	assertConverged(t, sB, sA)
	assertTimeline(t, sA, "re-pointed A", epoch2Rows)

	// Resurrect the zombie from its own directory. It comes back with the
	// phantom rows and the old epoch...
	srvP.Close()
	if err := sP.Close(); err != nil {
		t.Fatalf("closing old primary: %v", err)
	}
	sZ, err := openFollowerDir(pdir, nil)
	if err != nil {
		t.Fatalf("resurrecting zombie: %v", err)
	}
	defer sZ.Close()
	if sZ.Epoch() != 1 {
		t.Fatalf("zombie epoch = %d, want 1", sZ.Epoch())
	}
	if got := sZ.Count("sample"); got != len(epoch1Rows)+chaosPhantomN {
		t.Fatalf("zombie resurrected with %d rows, want %d (including its %d phantoms)",
			got, len(epoch1Rows)+chaosPhantomN, chaosPhantomN)
	}

	// ...and the raw handshake refuses it: stale epoch, no snapshot flag.
	if status, _, pe := probeHandshake(t, addrB, sZ.CommitSeq(), sZ.Epoch()); status != statusFencedStale || pe != prom.Epoch {
		t.Fatalf("zombie handshake = (status %d, epoch %d), want (statusFencedStale, %d)", status, pe, prom.Epoch)
	}
	// Rejoining through the Follower resyncs wholesale: the typed error
	// fires once, the retry requests a snapshot, the phantoms die.
	sZ.SetReplica(true)
	fZ := NewFollower(sZ, addrB, chaosFollowerOptions(t))
	fZ.Start()
	t.Cleanup(fZ.Close)
	// WaitForSeq is useless here — the zombie's raw seq (phantoms
	// included) already exceeds the new primary's head; seqs are not
	// comparable across epochs, which is the whole point. Wait for the
	// observable fencing outcome instead: epoch adopted, heads equal.
	deadline := time.Now().Add(20 * time.Second)
	for sZ.Epoch() != prom.Epoch || sZ.CommitSeq() != sB.CommitSeq() {
		if time.Now().After(deadline) {
			t.Fatalf("zombie never converged after resync: epoch %d seq %d, want epoch %d seq %d",
				sZ.Epoch(), sZ.CommitSeq(), prom.Epoch, sB.CommitSeq())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st := fZ.Status(); st.Resyncs == 0 {
		t.Fatal("zombie converged without a snapshot resync — phantom commits may have merged")
	}
	if sZ.Epoch() != prom.Epoch {
		t.Fatalf("zombie epoch = %d after resync, want %d", sZ.Epoch(), prom.Epoch)
	}
	assertConverged(t, sB, sZ)
	assertTimeline(t, sZ, "resynced zombie", epoch2Rows)
}

// TestFencedAheadRefusesZombie: a follower whose epoch is AHEAD of the
// server's (the server is the zombie) is refused with statusFencedAhead
// and must NOT resync — adopting the dead timeline would undo the
// promotion. The follower's store stays untouched while it retries.
func TestFencedAheadRefusesZombie(t *testing.T) {
	zombie := newPrimary(t)
	putAcct(t, zombie, "phantom", 1)
	_, addr := startServer(t, zombie)

	ahead := store.New()
	mustSchema(t, ahead)
	if _, err := ahead.AdvanceEpoch(1); err != nil { // epoch 2: promoted elsewhere
		t.Fatal(err)
	}
	putAcct(t, ahead, "epoch2", 2)
	beforeSeq := ahead.CommitSeq()

	// Raw handshake first: the typed status, observable at the wire.
	if status, _, pe := probeHandshake(t, addr, ahead.CommitSeq(), ahead.Epoch()); status != statusFencedAhead || pe != 1 {
		t.Fatalf("ahead handshake = (status %d, epoch %d), want (statusFencedAhead, 1)", status, pe)
	}

	ahead.SetReplica(true)
	f := NewFollower(ahead, addr, chaosFollowerOptions(t))
	f.Start()
	defer f.Close()

	deadline := time.Now().Add(5 * time.Second)
	for f.Status().PrimaryEpoch == 0 {
		if time.Now().After(deadline) {
			t.Fatal("follower never completed a handshake with the zombie")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // a few retry rounds
	st := f.Status()
	if !st.Fenced {
		t.Fatal("follower pointed at a zombie is not reporting Fenced")
	}
	if st.Connected {
		t.Fatal("follower claims a live session with a zombie that fenced it")
	}
	if st.Resyncs != 0 {
		t.Fatalf("ahead-side fencing triggered %d resyncs — it must never adopt the dead timeline", st.Resyncs)
	}
	if ahead.CommitSeq() != beforeSeq || ahead.Epoch() != 2 {
		t.Fatalf("follower store changed under a fenced-ahead session: seq %d (want %d), epoch %d (want 2)",
			ahead.CommitSeq(), beforeSeq, ahead.Epoch())
	}
}

// TestPromoteDisconnectRepoints: after promoting a mid-tier relay,
// Server.Disconnect forces its downstream followers to re-handshake and
// adopt the new epoch immediately.
func TestPromoteDisconnectRepoints(t *testing.T) {
	primary := newPrimary(t)
	_, addr := startServer(t, primary)

	mid := store.New()
	mustSchema(t, mid)
	mid.SetReplica(true)
	fmid := NewFollower(mid, addr, chaosFollowerOptions(t))
	fmid.Start()
	t.Cleanup(fmid.Close)
	srvMid, midAddr := startServer(t, mid)

	leaf := store.New()
	mustSchema(t, leaf)
	leaf.SetReplica(true)
	fleaf := NewFollower(leaf, midAddr, chaosFollowerOptions(t))
	fleaf.Start()
	t.Cleanup(fleaf.Close)

	putAcct(t, primary, "a", 1)
	if err := fmid.WaitForSeq(primary.CommitSeq(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := fleaf.WaitForSeq(primary.CommitSeq(), 5*time.Second); err != nil {
		t.Fatal(err)
	}

	prom, err := fmid.Promote()
	if err != nil {
		t.Fatal(err)
	}
	srvMid.Disconnect() // downstream re-handshakes against the new epoch

	putAcct(t, mid, "epoch2", 2)
	if err := fleaf.WaitForSeq(mid.CommitSeq(), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for leaf.Epoch() != prom.Epoch {
		if time.Now().After(deadline) {
			t.Fatalf("leaf epoch = %d, want %d after relay promotion", leaf.Epoch(), prom.Epoch)
		}
		time.Sleep(time.Millisecond)
	}
	assertConverged(t, mid, leaf)
}

// TestHalfOpenFreezesLastContact (satellite): a half-open network —
// connection alive, nothing delivered — freezes the follower's
// LastContact, so the reported staleness age grows monotonically until
// the link heals or the read timeout tears the session. This is exactly
// the signal `bfabric-admin status -addr` and /api/replication surface.
func TestHalfOpenFreezesLastContact(t *testing.T) {
	primary := newPrimary(t)
	putAcct(t, primary, "a", 1)
	_, addr := startServer(t, primary)

	px, err := netchaos.New(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	fstore := store.New()
	mustSchema(t, fstore)
	fstore.SetReplica(true)
	opts := chaosFollowerOptions(t)
	opts.ReadTimeout = 2 * time.Second // outlast the stall window under test
	f := NewFollower(fstore, px.Addr(), opts)
	f.Start()
	defer f.Close()
	if err := f.WaitForSeq(primary.CommitSeq(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	waitConnected(t, f)

	px.Set(netchaos.Fault{Mode: netchaos.HalfOpen})
	time.Sleep(30 * time.Millisecond) // let the stall take hold
	frozen := f.Status().LastContact
	lastAge := f.Report().LastContactAgeMS
	for i := 0; i < 5; i++ {
		time.Sleep(40 * time.Millisecond)
		st := f.Status()
		if !st.LastContact.Equal(frozen) {
			t.Fatalf("LastContact advanced during a half-open stall: %v -> %v", frozen, st.LastContact)
		}
		age := f.Report().LastContactAgeMS
		if age < lastAge {
			t.Fatalf("staleness age went backwards during the stall: %d -> %d ms", lastAge, age)
		}
		lastAge = age
	}
	if lastAge < 150 {
		t.Fatalf("after ~200ms of stall, reported age = %dms; the staleness bound is not growing", lastAge)
	}

	// Healing resumes contact: heartbeats advance LastContact again.
	px.Heal()
	deadline := time.Now().Add(5 * time.Second)
	for !f.Status().LastContact.After(frozen) {
		if time.Now().After(deadline) {
			t.Fatal("LastContact never advanced after the stall healed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
