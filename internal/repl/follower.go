package repl

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/store"
)

// Status is a point-in-time report of a follower's replication state.
type Status struct {
	// Connected reports a live session with the primary.
	Connected bool `json:"connected"`
	// LastApplied is the follower's committed seq — the asOf every read
	// served by this replica is at or above.
	LastApplied uint64 `json:"lastApplied"`
	// PrimarySeq is the primary's head seq as of the last frame or
	// heartbeat; LastApplied trails it by the replication lag.
	PrimarySeq uint64 `json:"primarySeq"`
	// LastContact is when the primary was last heard from. Together with
	// the heartbeat period it bounds time-based staleness: state this
	// replica serves is no more stale than (now - LastContact) plus one
	// heartbeat.
	LastContact time.Time `json:"lastContact,omitzero"`
	// Resyncs counts snapshot resyncs forced by divergence, gaps or
	// epoch fencing.
	Resyncs uint64 `json:"resyncs"`
	// Degraded reports that the replica's local durable path failed and
	// replication has STOPPED (the store refuses to apply): reads still
	// serve the last applied state, loudly stale.
	Degraded bool `json:"degraded"`
	// Epoch is the local store's replication epoch (fencing token).
	Epoch uint64 `json:"epoch"`
	// PrimaryEpoch is the primary's epoch as of the last handshake (zero
	// before the first one).
	PrimaryEpoch uint64 `json:"primaryEpoch,omitempty"`
	// Fenced reports that the last handshake was refused on epoch
	// grounds. Stale-side fencing clears itself (the next handshake
	// requests a snapshot and adopts the primary's epoch); ahead-side
	// fencing — this follower pointed at a zombie primary — persists
	// until the address serves the newer timeline.
	Fenced bool `json:"fenced,omitempty"`
}

// Lag returns the replication lag in commits, as last observed.
func (st Status) Lag() uint64 {
	if st.PrimarySeq > st.LastApplied {
		return st.PrimarySeq - st.LastApplied
	}
	return 0
}

// StatusReport is Status plus the derived fields operators actually act
// on — lag in commits and the age of the last primary contact — so
// surfaces like GET /api/replication and `bfabric-admin status -addr`
// don't make every consumer re-derive promotion-safety math from raw
// seqs and timestamps.
type StatusReport struct {
	Status
	// Role is "replica", or "primary" once the store has been promoted.
	Role string `json:"role"`
	// Lag is PrimarySeq - LastApplied in commits, as last observed.
	Lag uint64 `json:"lag"`
	// LastContactAgeMS is how long ago the primary was last heard from,
	// in milliseconds; -1 before the first contact. The staleness bound
	// is this plus one heartbeat period (docs/replication.md).
	LastContactAgeMS int64 `json:"lastContactAgeMs"`
}

// Report returns the follower's status with the derived fields filled
// in against the current clock.
func (f *Follower) Report() StatusReport {
	st := f.Status()
	r := StatusReport{Status: st, Role: "replica", Lag: st.Lag(), LastContactAgeMS: -1}
	if !f.s.IsReplica() {
		r.Role = "primary"
	}
	if !st.LastContact.IsZero() {
		r.LastContactAgeMS = time.Since(st.LastContact).Milliseconds()
	}
	return r
}

// FollowerOptions tunes a follower's connection management.
type FollowerOptions struct {
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// RetryMin/RetryMax bound the reconnect backoff (default 50ms..3s).
	RetryMin, RetryMax time.Duration
	// ReadTimeout is the per-read liveness bound; the primary heartbeats
	// twice as often or better (default 5s).
	ReadTimeout time.Duration
	// Logf, when set, receives session lifecycle messages.
	Logf func(format string, args ...any)
}

func (o FollowerOptions) withDefaults() FollowerOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.RetryMin <= 0 {
		o.RetryMin = 50 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 3 * time.Second
	}
	if o.ReadTimeout <= 0 {
		o.ReadTimeout = 5 * time.Second
	}
	return o
}

// Follower replicates a primary into a local store: it dials, hands the
// primary its last applied seq, applies whatever catch-up the primary
// chooses (frames or a snapshot) and then the live feed, reconnecting
// with backoff whenever the session drops. Torn messages, gaps and
// divergence never propagate: the follower drops the session and
// re-handshakes — asking for a full snapshot when its own state is the
// suspect — so its version chain is always a prefix of the primary's.
type Follower struct {
	s    *store.Store
	addr string
	opts FollowerOptions

	status  atomic.Pointer[Status]
	resync  atomic.Bool // next handshake must request a snapshot
	resyncs atomic.Uint64

	stop chan struct{}
	done chan struct{}
}

// errReplStopped ends the run loop for good (store degraded or closed).
var errReplStopped = errors.New("replication stopped")

// NewFollower returns a follower that will replicate the primary at addr
// into s. The caller is expected to have put s into replica mode
// (store.SetReplica) so local writes cannot interleave with the stream.
// Call Start to begin.
func NewFollower(s *store.Store, addr string, opts FollowerOptions) *Follower {
	f := &Follower{
		s:    s,
		addr: addr,
		opts: opts.withDefaults(),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	f.status.Store(&Status{LastApplied: s.CommitSeq(), Epoch: s.Epoch()})
	return f
}

// Start launches the replication loop.
func (f *Follower) Start() {
	go f.run()
}

// Close stops replication and waits for the loop to exit. The store is
// left as-is: still serving its last applied state.
func (f *Follower) Close() {
	select {
	case <-f.stop:
	default:
		close(f.stop)
	}
	<-f.done
}

// Status returns the current replication status.
func (f *Follower) Status() Status { return *f.status.Load() }

// WaitForSeq blocks until the follower has applied at least seq, the
// timeout passes, or replication stops.
func (f *Follower) WaitForSeq(seq uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		st := f.Status()
		if st.LastApplied >= seq {
			return nil
		}
		if st.Degraded {
			return fmt.Errorf("repl: follower degraded at seq %d", st.LastApplied)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("repl: timed out waiting for seq %d (at %d)", seq, st.LastApplied)
		}
		select {
		case <-f.stop:
			return fmt.Errorf("repl: follower closed at seq %d", f.Status().LastApplied)
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func (f *Follower) logf(format string, args ...any) {
	if f.opts.Logf != nil {
		f.opts.Logf(format, args...)
	}
}

// setStatus publishes a modified copy of the status (single-writer: only
// the run loop calls it).
func (f *Follower) setStatus(mut func(*Status)) {
	st := *f.status.Load()
	mut(&st)
	st.Resyncs = f.resyncs.Load()
	st.Epoch = f.s.Epoch()
	f.status.Store(&st)
}

func (f *Follower) run() {
	defer close(f.done)
	defer f.setStatus(func(st *Status) { st.Connected = false })
	backoff := f.opts.RetryMin
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		handshook, err := f.session()
		f.setStatus(func(st *Status) { st.Connected = false })
		if errors.Is(err, errReplStopped) {
			f.logf("repl: follower stopped: store no longer accepts replication")
			return
		}
		select {
		case <-f.stop:
			return
		default:
		}
		if err != nil {
			f.logf("repl: session: %v", err)
		}
		if handshook {
			// The primary accepted us, so the address and the epoch are
			// right; whatever ended the session (torn feed, timeout), the
			// next attempt should come quickly. A failed dial or a fenced
			// refusal keeps the backoff growing.
			backoff = f.opts.RetryMin
		}
		select {
		case <-f.stop:
			return
		case <-time.After(jitter(rng, backoff)):
		}
		backoff *= 2
		if backoff > f.opts.RetryMax {
			backoff = f.opts.RetryMax
		}
	}
}

// jitter spreads a backoff over [d/2, d], so a fleet of followers cut
// off by the same event (a primary restart, a healed partition) does
// not re-dial in lockstep, session after session.
func jitter(rng *rand.Rand, d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := int64(d / 2)
	return time.Duration(half + rng.Int63n(half+1))
}

// session runs one connection to the primary: handshake, then apply
// messages until something breaks. handshook reports that the primary
// accepted the handshake (statusOK) — the signal that resets the
// reconnect backoff.
func (f *Follower) session() (handshook bool, err error) {
	conn, err := net.DialTimeout("tcp", f.addr, f.opts.DialTimeout)
	if err != nil {
		return false, err
	}
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	// Ensure a Close during a blocking read tears the session down; the
	// watcher exits with the session, so reconnects don't accumulate them.
	sessionDone := make(chan struct{})
	defer close(sessionDone)
	go func() {
		select {
		case <-f.stop:
			conn.Close()
		case <-sessionDone:
		}
	}()

	var flags byte
	if f.resync.Load() {
		flags |= flagSnapshot
	}
	localEpoch := f.s.Epoch()
	conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
	if err := writeHello(conn, f.s.CommitSeq(), localEpoch, flags); err != nil {
		return false, err
	}
	br := bufio.NewReaderSize(conn, 256<<10)
	conn.SetReadDeadline(time.Now().Add(f.opts.ReadTimeout))
	replyStatus, head, primaryEpoch, err := readHelloReply(br)
	if err != nil {
		return false, err
	}
	switch replyStatus {
	case statusOK:
	case statusFencedStale:
		// Our timeline is the abandoned one. The sanctioned way back in is
		// a wholesale snapshot resync, which adopts the primary's epoch.
		f.resync.Store(true)
		f.resyncs.Add(1)
		f.setStatus(func(st *Status) {
			st.Fenced = true
			st.PrimaryEpoch = primaryEpoch
		})
		return false, &store.FencedEpochError{Local: localEpoch, Remote: primaryEpoch}
	case statusFencedAhead:
		// The "primary" is a zombie from an epoch we have already left
		// behind. Do NOT resync — that would adopt the dead timeline.
		// Keep retrying (backing off) until the address serves the newer
		// one; the operator re-points or restarts the zombie meanwhile.
		f.setStatus(func(st *Status) {
			st.Fenced = true
			st.PrimaryEpoch = primaryEpoch
		})
		return false, fmt.Errorf("repl: primary at %s is a fenced zombie: %w",
			f.addr, &store.FencedEpochError{Local: localEpoch, Remote: primaryEpoch})
	default:
		return false, fmt.Errorf("repl: unknown handshake status %d", replyStatus)
	}
	f.setStatus(func(st *Status) {
		st.Connected = true
		st.PrimarySeq = head
		st.PrimaryEpoch = primaryEpoch
		st.Fenced = false
		st.LastContact = time.Now()
	})

	for {
		conn.SetReadDeadline(time.Now().Add(f.opts.ReadTimeout))
		typ, payload, err := readMsg(br)
		if err != nil {
			return true, err
		}
		switch typ {
		case msgFrame:
			seq, err := f.s.ApplyReplicated(payload)
			if err != nil {
				return true, f.applyError(err)
			}
			f.setStatus(func(st *Status) {
				st.LastApplied = seq
				if seq > st.PrimarySeq {
					st.PrimarySeq = seq
				}
				st.LastContact = time.Now()
			})
		case msgHeartbeat:
			if len(payload) != 8 {
				return true, fmt.Errorf("repl: malformed heartbeat")
			}
			head := leU64(payload)
			f.setStatus(func(st *Status) {
				st.PrimarySeq = head
				st.LastContact = time.Now()
			})
		case msgSnapBegin:
			if len(payload) != 8 {
				return true, fmt.Errorf("repl: malformed snapshot begin")
			}
			if err := f.receiveSnapshot(conn, br, leU64(payload)); err != nil {
				return true, err
			}
		default:
			return true, fmt.Errorf("repl: unexpected message type %q", typ)
		}
	}
}

// applyError classifies an ApplyReplicated failure into the follower's
// reaction: stop for good (degraded/closed — the store must not be fed
// any further), plain reconnect (a gap the primary will fill from its
// log), or snapshot resync (divergence or a corrupt frame).
func (f *Follower) applyError(err error) error {
	switch {
	case errors.Is(err, store.ErrDegraded), errors.Is(err, store.ErrClosed):
		f.setStatus(func(st *Status) { st.Degraded = errors.Is(err, store.ErrDegraded) })
		f.logf("repl: apply failed permanently: %v", err)
		return errReplStopped
	case errors.Is(err, store.ErrReplicaGap):
		return err // reconnect; the handshake advertises our seq and the log fills the gap
	default:
		// Corrupt or diverged: only a wholesale snapshot is trustworthy.
		f.resync.Store(true)
		f.resyncs.Add(1)
		return err
	}
}

// receiveSnapshot streams snapshot chunks into ResetFromSnapshot. The
// decode runs concurrently off an io.Pipe so the whole snapshot is never
// buffered in memory.
func (f *Follower) receiveSnapshot(conn net.Conn, br *bufio.Reader, seq uint64) error {
	pr, pw := io.Pipe()
	type result struct {
		seq uint64
		err error
	}
	resCh := make(chan result, 1)
	go func() {
		got, err := f.s.ResetFromSnapshot(pr)
		if err != nil {
			pr.CloseWithError(err) // unblock the chunk writer
		}
		resCh <- result{got, err}
	}()

	var streamErr error
	for streamErr == nil {
		conn.SetReadDeadline(time.Now().Add(f.opts.ReadTimeout))
		typ, payload, err := readMsg(br)
		if err != nil {
			streamErr = err
			break
		}
		switch typ {
		case msgSnapChunk:
			if _, err := pw.Write(payload); err != nil {
				streamErr = err
			}
		case msgSnapEnd:
			pw.Close()
			res := <-resCh
			if res.err != nil {
				return f.applyError(res.err)
			}
			if res.seq != seq {
				// The stream's framing and the snapshot's own header
				// disagree — treat as torn.
				return fmt.Errorf("repl: snapshot seq mismatch: header %d, payload %d", seq, res.seq)
			}
			f.resync.Store(false)
			f.setStatus(func(st *Status) {
				st.LastApplied = res.seq
				if res.seq > st.PrimarySeq {
					st.PrimarySeq = res.seq
				}
				st.LastContact = time.Now()
			})
			return nil
		case msgHeartbeat:
			// Tolerated mid-snapshot even though the current primary never
			// interleaves one.
		default:
			streamErr = fmt.Errorf("repl: unexpected message %q inside snapshot", typ)
		}
	}
	pw.CloseWithError(streamErr)
	res := <-resCh
	if res.err != nil && (errors.Is(res.err, store.ErrDegraded) || errors.Is(res.err, store.ErrClosed)) {
		return f.applyError(res.err)
	}
	return streamErr
}

func leU64(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }
