package netchaos

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections and echoes whatever it reads.
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { io.Copy(c, c); c.Close() }()
		}
	}()
	return ln.Addr().String()
}

func dialProxy(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	c, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func roundTrip(t *testing.T, c net.Conn, msg string, timeout time.Duration) error {
	t.Helper()
	if _, err := c.Write([]byte(msg)); err != nil {
		return err
	}
	buf := make([]byte, len(msg))
	c.SetReadDeadline(time.Now().Add(timeout))
	if _, err := io.ReadFull(c, buf); err != nil {
		return err
	}
	if string(buf) != msg {
		t.Fatalf("echo mismatch: sent %q, got %q", msg, buf)
	}
	return nil
}

func TestPassThrough(t *testing.T) {
	p, err := New(echoServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	if err := roundTrip(t, c, "hello through the proxy", 2*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestHalfOpenStallsAndHealResumes(t *testing.T) {
	p, err := New(echoServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	if err := roundTrip(t, c, "warm", 2*time.Second); err != nil {
		t.Fatal(err)
	}

	p.Set(Fault{Mode: HalfOpen})
	time.Sleep(30 * time.Millisecond) // let the pumps observe the stall
	// The connection stays open but delivers nothing: the read must time
	// out rather than error or succeed.
	if _, err := c.Write([]byte("stalled")); err != nil {
		t.Fatalf("write into half-open conn: %v", err)
	}
	buf := make([]byte, 7)
	c.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	if _, err := io.ReadFull(c, buf); err == nil {
		t.Fatal("read succeeded through a half-open proxy")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("read through half-open proxy = %v, want timeout", err)
	}

	// Healing delivers the held bytes: nothing was lost in the stall.
	p.Heal()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read after heal: %v", err)
	}
	if !bytes.Equal(buf, []byte("stalled")) {
		t.Fatalf("post-heal bytes = %q, want %q", buf, "stalled")
	}
}

func TestPartitionSeversAndRefuses(t *testing.T) {
	p, err := New(echoServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	if err := roundTrip(t, c, "before", 2*time.Second); err != nil {
		t.Fatal(err)
	}

	p.Set(Fault{Mode: Partition})
	// The live connection dies...
	buf := make([]byte, 1)
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(buf); err == nil {
		t.Fatal("read succeeded across a partition")
	}
	// ...and new ones are refused (accepted then dropped, or failing).
	c2, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err == nil {
		defer c2.Close()
		c2.SetReadDeadline(time.Now().Add(2 * time.Second))
		c2.Write([]byte("x"))
		if _, err := c2.Read(buf); err == nil {
			t.Fatal("round trip succeeded across a partition")
		}
	}

	// Healing restores service for fresh connections.
	p.Heal()
	c3 := dialProxy(t, p)
	if err := roundTrip(t, c3, "after", 2*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestTornCutsAtByteCount(t *testing.T) {
	p, err := New(echoServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)

	p.Set(Fault{Mode: Torn, After: 4})
	if _, err := c.Write([]byte("12345678")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, _ := io.ReadFull(c, got)
	if n > 4 {
		t.Fatalf("torn connection delivered %d bytes, want <= 4", n)
	}
	// The connection must die, not hang.
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(got); err == nil {
		t.Fatal("torn connection still alive")
	}
}

func TestThrottleSlowsTransfer(t *testing.T) {
	p, err := New(echoServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)

	p.Set(Fault{Mode: Throttle, Rate: 4 << 10}) // 4 KiB/s
	payload := bytes.Repeat([]byte("x"), 2<<10) // 2 KiB: >= 500ms at the cap
	start := time.Now()
	if _, err := c.Write(payload); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	c.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 300*time.Millisecond {
		t.Fatalf("2KiB through a 4KiB/s throttle took %v, want >= 300ms", elapsed)
	}
}
