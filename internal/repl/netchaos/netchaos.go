// Package netchaos is a deterministic in-process network fault
// injector: a TCP proxy a test places between a replication follower
// and its primary (or any client and server) and then drives through a
// sequence of failure modes — added latency, bandwidth throttling, torn
// connections, half-open stalls, and full partitions.
//
// It is the network-side sibling of the store's FaultFS: the proxy
// itself contains no randomness, so a seeded campaign that picks modes
// and injection points from its own RNG replays identically. Tests flip
// modes with Set at exact points in their workload and observe how the
// replication layer reacts (reconnect, resync, fencing) with no real
// network, no root, and no timing flakiness beyond the connection
// timeouts under test.
package netchaos

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects the proxy's behavior for traffic in BOTH directions.
type Mode int

const (
	// Pass forwards traffic unmodified.
	Pass Mode = iota
	// Latency delays each forwarded chunk by Fault.Delay.
	Latency
	// Throttle caps forwarding at Fault.Rate bytes/second per direction.
	Throttle
	// Torn forwards Fault.After bytes per direction, then severs the
	// connection (both sides see a reset/EOF mid-stream).
	Torn
	// HalfOpen stops forwarding entirely but keeps every connection
	// open: both endpoints see a live, silent peer until their own
	// read deadlines fire. This is the "frozen LastContact" failure.
	HalfOpen
	// Partition severs every existing connection and refuses new ones
	// until the mode changes: the hard network split.
	Partition
)

func (m Mode) String() string {
	switch m {
	case Pass:
		return "pass"
	case Latency:
		return "latency"
	case Throttle:
		return "throttle"
	case Torn:
		return "torn"
	case HalfOpen:
		return "half-open"
	case Partition:
		return "partition"
	default:
		return "unknown"
	}
}

// Fault is one injected network condition.
type Fault struct {
	Mode Mode
	// Delay is the per-chunk forwarding delay under Latency.
	Delay time.Duration
	// Rate is the per-direction forwarding cap in bytes/second under
	// Throttle (minimum 1).
	Rate int
	// After is the number of bytes forwarded per direction before a Torn
	// connection is severed.
	After int64
}

// Proxy is one listener forwarding to one target address. Connections
// accepted while healthy keep flowing through mode changes; Set takes
// effect on live traffic immediately (the pumps re-read the mode for
// every chunk).
type Proxy struct {
	target string
	ln     net.Listener

	fault  atomic.Pointer[Fault]
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
}

// New starts a proxy on 127.0.0.1:0 forwarding to target.
func New(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{target: target, ln: ln, conns: make(map[net.Conn]struct{})}
	p.fault.Store(&Fault{Mode: Pass})
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's listening address; point the client here.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Set installs a fault. Installing Partition severs every live
// connection on the spot; every other mode applies to both live and
// future connections from the next chunk on.
func (p *Proxy) Set(f Fault) {
	if f.Mode == Throttle && f.Rate < 1 {
		f.Rate = 1
	}
	p.fault.Store(&f)
	if f.Mode == Partition {
		p.killConns()
	}
}

// Heal returns the proxy to transparent forwarding.
func (p *Proxy) Heal() { p.Set(Fault{Mode: Pass}) }

// Kill severs every live connection without changing the mode: an
// instantaneous connection loss with an immediately healthy network.
func (p *Proxy) Kill() { p.killConns() }

// Active reports the number of live proxied connections (both sides of
// each pair counted once).
func (p *Proxy) Active() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.conns) / 2
}

// Close shuts the proxy down: listener and every connection.
func (p *Proxy) Close() {
	if p.closed.Swap(true) {
		return
	}
	p.ln.Close()
	p.killConns()
	p.wg.Wait()
}

func (p *Proxy) killConns() {
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
}

func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed.Load() {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if p.fault.Load().Mode == Partition {
			conn.Close() // refused: the network is split
			continue
		}
		upstream, err := net.DialTimeout("tcp", p.target, 5*time.Second)
		if err != nil {
			conn.Close()
			continue
		}
		if !p.track(conn) || !p.track(upstream) {
			conn.Close()
			upstream.Close()
			return
		}
		p.wg.Add(2)
		go p.pump(conn, upstream)
		go p.pump(upstream, conn)
	}
}

// pump forwards src to dst one chunk at a time, consulting the current
// fault before and after each read. Any error on either side ends both:
// a proxied TCP connection fails as a unit, like a real one.
func (p *Proxy) pump(src, dst net.Conn) {
	defer p.wg.Done()
	defer p.untrack(src)
	defer src.Close()
	defer dst.Close()
	buf := make([]byte, 8<<10)
	var forwarded int64
	for {
		// A half-open network delivers nothing and closes nothing: stall
		// here, keeping both endpoints' connections open, until the mode
		// changes or the proxy dies.
		for p.fault.Load().Mode == HalfOpen && !p.closed.Load() {
			time.Sleep(2 * time.Millisecond)
		}
		if p.closed.Load() {
			return
		}
		// Bound each read so a mode change (to HalfOpen or Partition)
		// takes effect even on an idle connection.
		src.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
		n, err := src.Read(buf)
		if n > 0 {
			f := p.fault.Load()
			switch f.Mode {
			case Latency:
				time.Sleep(f.Delay)
			case Throttle:
				time.Sleep(time.Duration(float64(n) / float64(f.Rate) * float64(time.Second)))
			case Torn:
				if forwarded+int64(n) > f.After {
					// Deliver nothing past the cut: the stream tears
					// mid-flight exactly at After bytes.
					if keep := f.After - forwarded; keep > 0 {
						dst.Write(buf[:keep])
					}
					return
				}
			case HalfOpen:
				// Flipped mid-read: hold the chunk (like a kernel buffer
				// across a stalled link) and deliver it only when the
				// stall ends — a heal resumes the stream intact.
				for p.fault.Load().Mode == HalfOpen && !p.closed.Load() {
					time.Sleep(2 * time.Millisecond)
				}
				if p.closed.Load() {
					return
				}
			}
			forwarded += int64(n)
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue // idle poll; re-check the mode
			}
			return
		}
	}
}
