package repl

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/store"
)

// Server is the primary-side WAL shipper: it accepts follower
// connections, answers each handshake with the cheapest catch-up that is
// still exact (log offset when the frames are on disk, full snapshot
// otherwise), then streams every committed frame live, with heartbeats
// carrying the head seq so followers can bound their staleness even when
// no writes happen.
//
// One subscription per connection; a follower that cannot drain the feed
// is disconnected (never backpressuring the primary's commit path) and
// catches up again on reconnect.
type Server struct {
	s *store.Store

	// Heartbeat is the idle-feed heartbeat period (default 500ms). Set
	// before Start.
	Heartbeat time.Duration
	// Logf, when set, receives connection lifecycle messages.
	Logf func(format string, args ...any)

	ln     net.Listener
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
	stop   chan struct{}
}

// errFeedEnough aborts a WALFrames scan that has reached the
// subscription cut; everything further comes from the live feed.
var errFeedEnough = errors.New("caught up to the subscription cut")

// NewServer returns a shipper for the given primary store. Call Start to
// begin accepting followers.
func NewServer(s *store.Store) *Server {
	return &Server{
		s:         s,
		Heartbeat: 500 * time.Millisecond,
		conns:     make(map[net.Conn]struct{}),
		stop:      make(chan struct{}),
	}
}

// Start listens on addr (e.g. "127.0.0.1:0") and serves followers until
// Close. It returns the bound address.
func (srv *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv.ln = ln
	srv.wg.Add(1)
	go srv.acceptLoop()
	return ln.Addr().String(), nil
}

// Disconnect drops every live follower session without stopping the
// listener; followers reconnect immediately and re-handshake. Call it
// after promoting the store this server ships (a relay follower that
// was just promoted, or any node whose epoch advanced): the fresh
// handshakes observe the new epoch, so downstream followers are fenced
// into adopting it now rather than at their next natural reconnect.
func (srv *Server) Disconnect() {
	srv.mu.Lock()
	for c := range srv.conns {
		c.Close()
	}
	srv.mu.Unlock()
}

// Close stops accepting, disconnects every follower and waits for the
// per-connection goroutines to finish.
func (srv *Server) Close() error {
	if srv.closed.Swap(true) {
		return nil
	}
	close(srv.stop)
	var err error
	if srv.ln != nil {
		err = srv.ln.Close()
	}
	srv.mu.Lock()
	for c := range srv.conns {
		c.Close()
	}
	srv.mu.Unlock()
	srv.wg.Wait()
	return err
}

func (srv *Server) logf(format string, args ...any) {
	if srv.Logf != nil {
		srv.Logf(format, args...)
	}
}

func (srv *Server) acceptLoop() {
	defer srv.wg.Done()
	for {
		conn, err := srv.ln.Accept()
		if err != nil {
			return // listener closed
		}
		srv.mu.Lock()
		if srv.closed.Load() {
			srv.mu.Unlock()
			conn.Close()
			return
		}
		srv.conns[conn] = struct{}{}
		srv.mu.Unlock()
		srv.wg.Add(1)
		go func() {
			defer srv.wg.Done()
			srv.handle(conn)
			srv.mu.Lock()
			delete(srv.conns, conn)
			srv.mu.Unlock()
		}()
	}
}

// handle drives one follower connection: handshake, catch-up, live feed.
// Any error tears the connection down; the follower reconnects and the
// handshake re-derives the right catch-up.
func (srv *Server) handle(conn net.Conn) {
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}

	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	lastSeq, followerEpoch, flags, err := readHello(conn)
	if err != nil {
		srv.logf("repl: %s: handshake: %v", conn.RemoteAddr(), err)
		return
	}
	conn.SetReadDeadline(time.Time{})

	bw := bufio.NewWriterSize(conn, 256<<10)

	// Fencing, before any catch-up plan. Seqs are only comparable within
	// one epoch, so a cross-epoch session has exactly one sound shape:
	// a lower-epoch follower asking for a wholesale snapshot (which
	// carries our epoch and replaces its timeline). Everything else is
	// refused with a status the follower turns into a typed error.
	epoch := srv.s.Epoch()
	fenceStatus := statusOK
	switch {
	case followerEpoch > epoch:
		fenceStatus = statusFencedAhead // we are the stale one; never feed it
	case followerEpoch < epoch && flags&flagSnapshot == 0:
		fenceStatus = statusFencedStale // must resync, not offset-catch-up
	}
	if fenceStatus != statusOK {
		conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
		if err := writeHelloReply(bw, fenceStatus, srv.s.CommitSeq(), epoch); err == nil {
			bw.Flush()
		}
		srv.logf("repl: %s: fenced (status %d): local epoch %d, follower epoch %d",
			conn.RemoteAddr(), fenceStatus, epoch, followerEpoch)
		return
	}

	// Subscribe BEFORE deciding how to catch up: the cut seq plus the
	// feed cover every commit from the cut on, so catch-up only has to
	// reach the cut — no window where a commit could fall between.
	sub, err := srv.s.SubscribeCommits(4096)
	if err != nil {
		return
	}
	defer sub.Cancel()
	cut := sub.FromSeq

	conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
	if err := writeHelloReply(bw, statusOK, cut, epoch); err != nil {
		return
	}

	switch {
	case flags&flagSnapshot != 0 || lastSeq > cut:
		// Asked for a snapshot, or the follower claims to be ahead of us
		// (a diverged timeline, e.g. a repointed ex-primary): wholesale
		// resync is the only exact answer.
		if err := srv.sendSnapshot(conn, bw); err != nil {
			srv.logf("repl: %s: snapshot: %v", conn.RemoteAddr(), err)
			return
		}
	case lastSeq < cut:
		sent := lastSeq
		err := srv.s.WALFrames(lastSeq+1, func(seq uint64, payload []byte) error {
			if seq > cut {
				return errFeedEnough
			}
			conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
			if err := writeMsg(bw, msgFrame, payload); err != nil {
				return err
			}
			sent = seq
			return nil
		})
		if err != nil && !errors.Is(err, errFeedEnough) && !errors.Is(err, store.ErrSeqGone) {
			srv.logf("repl: %s: offset catch-up: %v", conn.RemoteAddr(), err)
			return
		}
		if sent < cut {
			// The log no longer reaches back to the follower's seq (or its
			// readable tail fell short of the cut): snapshot instead. The
			// frames already sent are harmless — the follower skips
			// everything at or below the snapshot seq.
			if err := srv.sendSnapshot(conn, bw); err != nil {
				srv.logf("repl: %s: snapshot: %v", conn.RemoteAddr(), err)
				return
			}
		}
	}
	conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
	if err := bw.Flush(); err != nil {
		return
	}

	srv.feed(conn, bw, sub)
}

// feed streams live frames and heartbeats until the connection, the
// subscription, or the server dies.
func (srv *Server) feed(conn net.Conn, bw *bufio.Writer, sub *store.CommitSub) {
	hb := time.NewTicker(srv.Heartbeat)
	defer hb.Stop()
	for {
		select {
		case <-srv.stop:
			return
		case fr, ok := <-sub.C:
			if !ok {
				// Feed overflow (slow follower) or store closed: end the
				// session; the follower re-handshakes and catches up.
				srv.logf("repl: %s: feed closed (overflow or shutdown)", conn.RemoteAddr())
				return
			}
			// Never ship a frame the primary could still lose: wait for
			// the group-commit fsync to cover it first.
			if err := srv.s.WaitDurable(fr.Seq); err != nil {
				return
			}
			conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
			if err := writeMsg(bw, msgFrame, fr.Payload); err != nil {
				return
			}
			// Drain whatever else is already buffered before flushing, so
			// a burst of commits rides one syscall.
			for drained := false; !drained; {
				select {
				case fr, ok := <-sub.C:
					if !ok {
						bw.Flush()
						return
					}
					if err := srv.s.WaitDurable(fr.Seq); err != nil {
						return
					}
					if err := writeMsg(bw, msgFrame, fr.Payload); err != nil {
						return
					}
				default:
					drained = true
				}
			}
			if err := bw.Flush(); err != nil {
				return
			}
		case <-hb.C:
			conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
			if err := writeMsg(bw, msgHeartbeat, u64payload(srv.s.CommitSeq())); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// sendSnapshot streams a pinned consistent snapshot: begin (with seq),
// chunks, end. Commits proceed concurrently; the pinned version is
// immutable.
func (srv *Server) sendSnapshot(conn net.Conn, bw *bufio.Writer) error {
	seq, write := srv.s.PinnedSnapshot()
	conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
	if err := writeMsg(bw, msgSnapBegin, u64payload(seq)); err != nil {
		return err
	}
	cw := &chunkWriter{conn: conn, bw: bw}
	if err := write(cw); err != nil {
		return err
	}
	if err := cw.flushChunk(); err != nil {
		return err
	}
	conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
	return writeMsg(bw, msgSnapEnd, nil)
}

// chunkWriter adapts the snapshot encoder's io.Writer to msgSnapChunk
// messages, buffering up to chunkSize bytes per message so the chunk
// count stays proportional to the snapshot size, not the encoder's write
// granularity.
type chunkWriter struct {
	conn net.Conn
	bw   *bufio.Writer
	buf  []byte
}

const snapChunkSize = 256 << 10

func (cw *chunkWriter) Write(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		room := snapChunkSize - len(cw.buf)
		if room == 0 {
			if err := cw.flushChunk(); err != nil {
				return n - len(p), err
			}
			room = snapChunkSize
		}
		if room > len(p) {
			room = len(p)
		}
		cw.buf = append(cw.buf, p[:room]...)
		p = p[room:]
	}
	return n, nil
}

func (cw *chunkWriter) flushChunk() error {
	if len(cw.buf) == 0 {
		return nil
	}
	cw.conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
	err := writeMsg(cw.bw, msgSnapChunk, cw.buf)
	cw.buf = cw.buf[:0]
	return err
}
