package repl

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"repro/internal/store"
)

// The follower fault campaign is the replication analogue of the store's
// crash-point campaign: the same deterministic replay — frames applied
// through ApplyReplicated into a durable follower, with a mid-stream
// snapshot resync — is re-run once per mutating filesystem operation,
// with that operation (and everything after: the disk stays dead)
// failing. The contract under ANY such fault:
//
//   - the follower never serves phantom rows: its visible state is
//     always an exact committed prefix of the primary's history;
//   - it refuses loudly: once the local durable path fails, further
//     replication is rejected with ErrDegraded (or the directory refuses
//     to reopen with a damage report) instead of silently absorbing
//     frames it cannot log;
//   - it converges after resync: reopening on a healthy disk (or, if the
//     directory was damaged mid-reset, resyncing into a fresh one) and
//     replaying the stream ends byte-identical to the primary.
//
// The default run covers a deterministic spread of fault points so `go
// test ./...` always exercises the contract; BFABRIC_FAULTS=full (make
// test-repl) sweeps every point with seeded mode assignment
// (BFABRIC_FAULT_SEED replays a sweep).

const replCampaignN = 18

// campaignSchema registers the replay schema, tolerating prior
// registration (reopened directories already carry it via the snapshot).
func campaignSchema(t *testing.T, s *store.Store) {
	t.Helper()
	if err := s.CreateTable("sample"); err != nil && !errors.Is(err, store.ErrExists) {
		t.Fatal(err)
	}
	if err := s.CreateIndex("sample", "n", true); err != nil && !errors.Is(err, store.ErrExists) {
		t.Fatal(err)
	}
}

// captureStream runs the primary workload once and returns the primary
// itself, its committed frames, a snapshot pinned mid-stream (the resync
// the replay injects) and a snapshot of the final state.
func captureStream(t *testing.T) (primary *store.Store, frames []store.ReplFrame, midSnap, fullSnap []byte) {
	t.Helper()
	primary = store.New()
	campaignSchema(t, primary)
	sub, err := primary.SubscribeCommits(replCampaignN + 4)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()

	pin := func() []byte {
		var buf bytes.Buffer
		_, write := primary.PinnedSnapshot()
		if err := write(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for i := int64(1); i <= replCampaignN; i++ {
		if err := primary.Update(func(tx *store.Tx) error {
			_, err := tx.Insert("sample", store.Record{"n": i})
			return err
		}); err != nil {
			t.Fatal(err)
		}
		if i == replCampaignN/2 {
			midSnap = pin()
		}
	}
	fullSnap = pin()
	for len(frames) < replCampaignN {
		frames = append(frames, <-sub.C)
	}
	return primary, frames, midSnap, fullSnap
}

// replayWorkload drives the follower replay path: first half of the
// stream frame-by-frame, a snapshot resync (the divergence-recovery
// path: wal reset + snapshot write), then the rest of the stream. It
// returns the first error — every fs op behind it is a campaign fault
// point.
func replayWorkload(s *store.Store, frames []store.ReplFrame, midSnap []byte) error {
	half := len(frames) / 2
	for _, fr := range frames[:half] {
		if _, err := s.ApplyReplicated(fr.Payload); err != nil {
			return err
		}
	}
	if _, err := s.ResetFromSnapshot(bytes.NewReader(midSnap)); err != nil {
		return err
	}
	for _, fr := range frames[half:] {
		if _, err := s.ApplyReplicated(fr.Payload); err != nil {
			return err
		}
	}
	return nil
}

func openFollowerDir(dir string, fsys store.FS) (*store.Store, error) {
	return store.Open(dir, store.DurabilityOptions{
		Sync:          store.SyncAlways,
		SnapshotEvery: -1,
		FS:            fsys,
	})
}

// assertNoPhantoms checks the follower's visible state is an exact
// committed prefix of the primary's history: contiguous rows 1..k for
// some k <= N, each carrying its own index, nothing beyond.
func assertNoPhantoms(t *testing.T, s *store.Store, label string) {
	t.Helper()
	k := int64(s.Count("sample"))
	if k > replCampaignN {
		t.Fatalf("%s: phantom rows: follower shows %d, primary committed %d", label, k, replCampaignN)
	}
	for id := int64(1); id <= k; id++ {
		r, err := s.Get("sample", id)
		if err != nil {
			t.Fatalf("%s: gap in follower prefix at id %d (count %d): %v", label, id, k, err)
		}
		if r.Int("n") != id {
			t.Fatalf("%s: follower row %d carries n=%d — not the primary's row", label, id, r.Int("n"))
		}
	}
	// Beyond the prefix: nothing. A follower that never got far enough to
	// create the table answers ErrNoTable — an empty prefix, not a phantom.
	if _, err := s.Get("sample", k+1); !errors.Is(err, store.ErrNotFound) && !errors.Is(err, store.ErrNoTable) {
		t.Fatalf("%s: phantom row beyond the prefix (id %d): %v", label, k+1, err)
	}
}

func TestFollowerFaultCampaign(t *testing.T) {
	full := os.Getenv("BFABRIC_FAULTS") == "full"
	primary, frames, midSnap, fullSnap := captureStream(t)

	// Pass 1: a clean run on a counting FaultFS measures the op stream.
	probe := store.NewFaultFS(nil)
	s, err := openFollowerDir(t.TempDir(), probe)
	if err != nil {
		t.Fatalf("baseline open: %v", err)
	}
	campaignSchema(t, s)
	s.SetReplica(true)
	if err := replayWorkload(s, frames, midSnap); err != nil {
		t.Fatalf("baseline replay failed with no faults armed: %v", err)
	}
	assertConverged(t, primary, s)
	if err := s.Close(); err != nil {
		t.Fatalf("baseline close: %v", err)
	}
	total := probe.Ops()
	if total < replCampaignN {
		t.Fatalf("implausible op count %d for %d replicated commits — is the FS threaded under the follower's WAL?", total, replCampaignN)
	}

	modes := []store.FaultMode{store.FaultErr, store.FaultTorn, store.FaultENOSPC}
	var points []int
	if full {
		for p := 0; p < total; p++ {
			points = append(points, p)
		}
	} else {
		for p := 0; p < total; p += 5 {
			points = append(points, p)
		}
		points = append(points, total-1)
	}
	seed := int64(1)
	if full {
		if env := os.Getenv("BFABRIC_FAULT_SEED"); env != "" {
			fmt.Sscanf(env, "%d", &seed)
		}
		t.Logf("full follower campaign: %d fault points, seed %d (replay with BFABRIC_FAULT_SEED)", total, seed)
	}
	rng := rand.New(rand.NewSource(seed))

	for i, p := range points {
		mode := modes[i%len(modes)]
		if full {
			mode = modes[rng.Intn(len(modes))]
		}
		label := fmt.Sprintf("fault@%d/%d mode=%d", p, total, mode)
		dir := t.TempDir()
		ffs := store.NewFaultFS(nil)
		ffs.FailAt(p, mode)

		s, err := openFollowerDir(dir, ffs)
		var replayErr error
		if err == nil {
			campaignSchema(t, s)
			s.SetReplica(true)
			replayErr = replayWorkload(s, frames, midSnap)
			if replayErr == nil {
				// Fault absorbed without losing the stream (e.g. a failed
				// background op): the follower must simply be converged.
				assertConverged(t, primary, s)
			} else {
				// The live follower may keep serving reads, but only the
				// committed prefix — and it must refuse further frames
				// loudly once its durable path is gone.
				assertNoPhantoms(t, s, label+" (live)")
				// Feed the next in-order frame (frames[i] carries seq i+1):
				// the refusal must be the degradation, not a gap complaint.
				if h := s.Health(); !h.OK && s.CommitSeq() < uint64(len(frames)) {
					next := frames[s.CommitSeq()]
					if _, aerr := s.ApplyReplicated(next.Payload); !errors.Is(aerr, store.ErrDegraded) {
						t.Fatalf("%s: degraded follower accepted a frame (err=%v)", label, aerr)
					}
				}
			}
			s.Close() // the disk is (possibly) dead; errors expected
		}
		if _, fired := ffs.Failed(); !fired {
			t.Fatalf("%s: fault never fired (ops=%d)", label, ffs.Ops())
		}

		// Recovery: reopen on a healthy disk and replay to convergence. A
		// directory torn mid-reset may legitimately refuse to reopen
		// (damaged history is reported, not guessed at) — the operator
		// answer is a fresh-directory resync, which must always converge.
		rs, err := openFollowerDir(dir, nil)
		if err != nil {
			rs, err = openFollowerDir(t.TempDir(), nil)
			if err != nil {
				t.Fatalf("%s: fresh-dir open: %v", label, err)
			}
			campaignSchema(t, rs)
			rs.SetReplica(true)
			if _, err := rs.ResetFromSnapshot(bytes.NewReader(fullSnap)); err != nil {
				t.Fatalf("%s: fresh-dir resync: %v", label, err)
			}
		} else {
			assertNoPhantoms(t, rs, label+" (recovered)")
			campaignSchema(t, rs)
			rs.SetReplica(true)
			for _, fr := range frames {
				if _, err := rs.ApplyReplicated(fr.Payload); err != nil {
					t.Fatalf("%s: replay after recovery: %v", label, err)
				}
			}
		}
		assertConverged(t, primary, rs)
		if err := rs.Close(); err != nil {
			t.Fatalf("%s: close after convergence: %v", label, err)
		}
	}
}
