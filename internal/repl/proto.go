// Package repl implements physical replication for the store: a
// primary-side WAL shipper that streams committed frames over TCP, and a
// follower that replays them into its own MVCC version chain and serves
// lock-free snapshot reads.
//
// The unit of replication is the WAL frame payload — the exact bytes the
// primary appended to its log. Every message carries the same CRC32-IEEE
// checksum the on-disk WAL frame format uses, so a frame is covered by
// one checksum from the primary's disk, across the wire, to the
// follower's disk. A follower that sees a checksum mismatch, a gap, or
// any other inconsistency drops the connection and re-handshakes; the
// primary answers a handshake with log-offset catch-up when it still has
// the frames, or a full snapshot when it does not (or when the follower
// asks for one). Followers resync, they never diverge.
//
// See docs/replication.md for the protocol, the staleness bound and the
// resync rules.
package repl

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	// protoMagic opens both hello messages; the trailing digits version
	// the protocol. v2 added the replication epoch to both directions of
	// the handshake and a status byte to the reply (fencing).
	protoMagic = "BFREPL02"

	// helloSize is the follower's hello: magic, last applied seq,
	// replication epoch, flags.
	helloSize = len(protoMagic) + 8 + 8 + 1
	// helloReplySize is the primary's reply: magic, status, head seq,
	// replication epoch.
	helloReplySize = len(protoMagic) + 1 + 8 + 8

	// flagSnapshot asks the primary for a full snapshot regardless of the
	// advertised seq — the follower's divergence-recovery path, and the
	// only admissible way for a lower-epoch node to rejoin (the snapshot
	// carries the primary's epoch, which the resync adopts).
	flagSnapshot byte = 1 << 0

	// Handshake reply statuses. Anything but statusOK ends the session
	// right after the reply; no feed follows.
	statusOK byte = 0
	// statusFencedStale: the follower's epoch is behind the primary's and
	// it did not ask for a snapshot. Commit seqs are not comparable across
	// epochs (both timelines extended the shared prefix independently), so
	// offset catch-up could silently merge phantom commits — the follower
	// must reconnect with flagSnapshot and resync wholesale.
	statusFencedStale byte = 1
	// statusFencedAhead: the follower's epoch is AHEAD of the primary's —
	// the primary is the zombie here (a resurrected ex-primary still
	// shipping its abandoned timeline). The follower must not apply
	// anything from it, and must NOT resync either; it keeps retrying
	// until the address serves the newer timeline.
	statusFencedAhead byte = 2

	// Message types, primary → follower. Each message is
	// [1 type][4 LE payload len][4 LE CRC32-IEEE of payload][payload].
	msgFrame     byte = 'F' // payload = one WAL frame payload (walcodec)
	msgSnapBegin byte = 'S' // payload = 8-byte LE snapshot seq
	msgSnapChunk byte = 'C' // payload = next run of snapshot bytes
	msgSnapEnd   byte = 'Z' // payload empty
	msgHeartbeat byte = 'H' // payload = 8-byte LE primary head seq

	msgHeaderSize = 9
	// maxMsgSize bounds any single message; mirrors the WAL's own frame
	// limit so a corrupt length is rejected, not allocated.
	maxMsgSize = 1 << 30
)

// writeHello sends the follower's handshake: its last applied commit
// seq, its replication epoch, and flags.
func writeHello(w io.Writer, lastSeq, epoch uint64, flags byte) error {
	buf := make([]byte, 0, helloSize)
	buf = append(buf, protoMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, lastSeq)
	buf = binary.LittleEndian.AppendUint64(buf, epoch)
	buf = append(buf, flags)
	_, err := w.Write(buf)
	return err
}

// readHello reads the follower's handshake.
func readHello(r io.Reader) (lastSeq, epoch uint64, flags byte, err error) {
	buf := make([]byte, helloSize)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, 0, 0, err
	}
	if string(buf[:len(protoMagic)]) != protoMagic {
		return 0, 0, 0, fmt.Errorf("repl: bad handshake magic")
	}
	lastSeq = binary.LittleEndian.Uint64(buf[len(protoMagic):])
	epoch = binary.LittleEndian.Uint64(buf[len(protoMagic)+8:])
	return lastSeq, epoch, buf[helloSize-1], nil
}

// writeHelloReply sends the primary's handshake reply: the fencing
// status, its head seq and its replication epoch.
func writeHelloReply(w io.Writer, status byte, headSeq, epoch uint64) error {
	buf := make([]byte, 0, helloReplySize)
	buf = append(buf, protoMagic...)
	buf = append(buf, status)
	buf = binary.LittleEndian.AppendUint64(buf, headSeq)
	buf = binary.LittleEndian.AppendUint64(buf, epoch)
	_, err := w.Write(buf)
	return err
}

// readHelloReply reads the primary's handshake reply.
func readHelloReply(r io.Reader) (status byte, headSeq, epoch uint64, err error) {
	buf := make([]byte, helloReplySize)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, 0, 0, err
	}
	if string(buf[:len(protoMagic)]) != protoMagic {
		return 0, 0, 0, fmt.Errorf("repl: bad handshake magic")
	}
	status = buf[len(protoMagic)]
	headSeq = binary.LittleEndian.Uint64(buf[len(protoMagic)+1:])
	epoch = binary.LittleEndian.Uint64(buf[len(protoMagic)+9:])
	return status, headSeq, epoch, nil
}

// writeMsg frames and writes one message. The checksum is computed over
// the payload — for msgFrame that makes it the same value as the WAL
// frame CRC the payload was (or will be) stored under.
func writeMsg(w io.Writer, typ byte, payload []byte) error {
	var hdr [msgHeaderSize]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[5:9], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readMsg reads and checksums one message. A CRC mismatch or implausible
// length is an error — the caller treats the connection as torn and
// resyncs.
func readMsg(r *bufio.Reader) (byte, []byte, error) {
	var hdr [msgHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	length := binary.LittleEndian.Uint32(hdr[1:5])
	sum := binary.LittleEndian.Uint32(hdr[5:9])
	if length > maxMsgSize {
		return 0, nil, fmt.Errorf("repl: implausible message length %d", length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return 0, nil, fmt.Errorf("repl: message checksum mismatch")
	}
	return hdr[0], payload, nil
}

// u64payload encodes one uint64 as a message payload.
func u64payload(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}
