// Package audit implements B-Fabric's manipulation log: every create,
// update and delete on the main data objects is recorded "such that the
// user can remember what he did in the past and the system can be
// monitored". Entries are written inside the same transaction as the
// mutation, so the log is exactly as durable as the change it describes.
package audit

import (
	"cmp"
	"fmt"
	"slices"
	"strings"
	"time"

	"repro/internal/events"
	"repro/internal/store"
)

const auditTable = "_audit"

// Entry is one logged manipulation.
type Entry struct {
	ID int64
	// Seq is a monotonically increasing sequence number.
	Seq int64
	// Topic is the event topic ("sample.created", ...).
	Topic string
	// Kind and Ref identify the touched object.
	Kind string
	Ref  int64
	// Actor is the login that performed the manipulation.
	Actor string
	// At is the wall-clock time of the manipulation.
	At time.Time
	// Fields lists the touched field names (for updates).
	Fields []string
}

// Log subscribes to the bus and persists manipulation entries.
type Log struct {
	store *store.Store
	seq   int64
}

// New creates the audit log over the store and subscribes it to the bus.
func New(s *store.Store, bus *events.Bus) *Log {
	s.EnsureTable(auditTable)
	if !s.HasTable(auditTable + "_marker") {
		_ = s.CreateIndex(auditTable, "actor", false)
		_ = s.CreateIndex(auditTable, "refkey", false)
		_ = s.CreateIndex(auditTable, "topic", false)
		s.EnsureTable(auditTable + "_marker")
	}
	l := &Log{store: s, seq: int64(s.Count(auditTable))}
	bus.Subscribe("", l.onEvent)
	return l
}

func refKey(kind string, ref int64) string { return fmt.Sprintf("%s:%d", kind, ref) }

// auditable reports whether a topic describes a manipulation worth logging.
func auditable(topic string) bool {
	for _, suffix := range []string{".created", ".updated", ".deleted", ".released", ".merged"} {
		if strings.HasSuffix(topic, suffix) {
			return true
		}
	}
	return false
}

func (l *Log) onEvent(ev events.Event) error {
	if !auditable(ev.Topic) || ev.Kind == "" {
		return nil
	}
	tx, ok := ev.Tx.(*store.Tx)
	if !ok {
		return fmt.Errorf("audit: event %s without transaction", ev.Topic)
	}
	at := nowFunc()
	if ev.Items != nil {
		// Coalesced batch: one entry per touched entity, all written in the
		// publishing transaction and stamped with one wall-clock instant —
		// the batch is one manipulation and lands (or rolls back) whole.
		for _, it := range ev.Items {
			if err := l.insert(tx, ev, it.ID, it.Payload, at); err != nil {
				return err
			}
		}
		return nil
	}
	return l.insert(tx, ev, ev.ID, ev.Payload, at)
}

func (l *Log) insert(tx *store.Tx, ev events.Event, ref int64, payload map[string]any, at time.Time) error {
	var fields []string
	for k := range payload {
		fields = append(fields, k)
	}
	slices.Sort(fields)
	l.seq++
	_, err := tx.Insert(auditTable, store.Record{
		"seq":    l.seq,
		"topic":  ev.Topic,
		"kind":   ev.Kind,
		"ref":    ref,
		"refkey": refKey(ev.Kind, ref),
		"actor":  ev.Actor,
		"at":     at,
		"fields": fields,
	})
	return err
}

var nowFunc = func() time.Time { return time.Now().UTC() }

func entryFromRecord(r store.Record) Entry {
	return Entry{
		ID: r.ID(), Seq: r.Int("seq"), Topic: r.String("topic"),
		Kind: r.String("kind"), Ref: r.Int("ref"), Actor: r.String("actor"),
		// The record may be a shared reference from the zero-copy read
		// path; clone the slice so the Entry is fully caller-owned.
		At: r.Time("at"), Fields: slices.Clone(r.Strings("fields")),
	}
}

func sortEntries(es []Entry) {
	slices.SortFunc(es, func(a, b Entry) int { return cmp.Compare(a.Seq, b.Seq) })
}

// collect drains a planned audit query into entries. Entries insert in
// sequence order, so the engine's id ordering already is seq ordering;
// sortEntries stays as a cheap invariant guard on the (small) result.
func collect(tx *store.Tx, q store.Query) ([]Entry, error) {
	rows, err := tx.Query(q)
	if err != nil {
		return nil, err
	}
	out := make([]Entry, 0, 16)
	for rows.Next() {
		out = append(out, entryFromRecord(rows.Record()))
	}
	return out, rows.Err()
}

// ByActor returns the actor's manipulations in sequence order.
func (l *Log) ByActor(tx *store.Tx, actor string) ([]Entry, error) {
	out, err := collect(tx, store.Query{
		Table: auditTable,
		Where: []store.Pred{store.Eq("actor", actor)},
	})
	if err != nil {
		return nil, err
	}
	sortEntries(out)
	return out, nil
}

// ByActorSince returns the actor's manipulations at or after the given
// time, in sequence order. The actor index drives; the time bound is a
// pushed-down residual.
func (l *Log) ByActorSince(tx *store.Tx, actor string, since time.Time) ([]Entry, error) {
	out, err := collect(tx, store.Query{
		Table: auditTable,
		Where: []store.Pred{store.Eq("actor", actor), store.Range("at", since, nil)},
	})
	if err != nil {
		return nil, err
	}
	sortEntries(out)
	return out, nil
}

// ByObject returns the manipulations of one object in sequence order.
func (l *Log) ByObject(tx *store.Tx, kind string, ref int64) ([]Entry, error) {
	out, err := collect(tx, store.Query{
		Table: auditTable,
		Where: []store.Pred{store.Eq("refkey", refKey(kind, ref))},
	})
	if err != nil {
		return nil, err
	}
	sortEntries(out)
	return out, nil
}

// ByTimeRange returns the manipulations inside [from, to] (zero time =
// unbounded on that side) in sequence order — the monitoring window
// query.
func (l *Log) ByTimeRange(tx *store.Tx, from, to time.Time) ([]Entry, error) {
	var lo, hi any
	if !from.IsZero() {
		lo = from
	}
	if !to.IsZero() {
		hi = to
	}
	out, err := collect(tx, store.Query{
		Table: auditTable,
		Where: []store.Pred{store.Range("at", lo, hi)},
	})
	if err != nil {
		return nil, err
	}
	sortEntries(out)
	return out, nil
}

// Recent returns the most recent n entries, newest first — the system
// monitoring view. The engine streams the table in descending id order
// and stops after n rows, so the cost is O(n), not O(table); the former
// implementation scanned and sorted every entry ever logged.
func (l *Log) Recent(tx *store.Tx, n int) ([]Entry, error) {
	if n <= 0 {
		return nil, nil
	}
	out, err := collect(tx, store.Query{Table: auditTable, Desc: true, Limit: n})
	if err != nil {
		return nil, err
	}
	// Entry ids and seqs advance together; guard the newest-first contract
	// against any divergence within the page.
	slices.SortFunc(out, func(a, b Entry) int { return cmp.Compare(b.Seq, a.Seq) })
	return out, nil
}

// Count returns the total number of audit entries.
func (l *Log) Count() int { return l.store.Count(auditTable) }

// Summary is the monitoring rollup of the manipulation log: the total
// entry count and the histograms over topics and actors.
type Summary struct {
	ByTopic map[string]int `json:"by_topic"`
	ByActor map[string]int `json:"by_actor"`
	Total   int            `json:"total"`
}

// Summarize computes the rollup from maintained counters: the total is
// the table's live count and both histograms walk their index's distinct
// keys (count(postings)) — cost is O(distinct topics + distinct actors),
// never O(entries), no matter how long the system has been running.
func (l *Log) Summarize(tx *store.Tx) (Summary, error) {
	s := Summary{
		ByTopic: map[string]int{},
		ByActor: map[string]int{},
		Total:   tx.Count(auditTable),
	}
	fill := func(field string, into map[string]int) error {
		res, err := tx.Aggregate(store.Query{Table: auditTable}.GroupBy(field))
		if err != nil {
			return err
		}
		for _, g := range res.Groups {
			if k, ok := g.Key.(string); ok {
				into[k] = g.Count()
			}
		}
		return nil
	}
	if err := fill("topic", s.ByTopic); err != nil {
		return s, err
	}
	if err := fill("actor", s.ByActor); err != nil {
		return s, err
	}
	return s, nil
}
