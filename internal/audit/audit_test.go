package audit

import (
	"errors"
	"testing"
	"time"

	"repro/internal/entity"
	"repro/internal/events"
	"repro/internal/model"
	"repro/internal/store"
)

type fixture struct {
	log     *Log
	db      *model.DB
	s       *store.Store
	project int64
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	s := store.New()
	bus := events.NewBus()
	rg := entity.NewRegistry(s, bus)
	if err := model.RegisterSchema(rg); err != nil {
		t.Fatal(err)
	}
	db := model.NewDB(rg)
	l := New(s, bus)
	fx := &fixture{log: l, db: db, s: s}
	err := s.Update(func(tx *store.Tx) error {
		var err error
		fx.project, err = db.CreateProject(tx, "setup", model.Project{Name: "p"})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return fx
}

func TestCreateUpdateDeleteLogged(t *testing.T) {
	fx := newFixture(t)
	var sid int64
	_ = fx.s.Update(func(tx *store.Tx) error {
		sid, _ = fx.db.CreateSample(tx, "alice", model.Sample{Name: "s", Project: fx.project})
		return nil
	})
	_ = fx.s.Update(func(tx *store.Tx) error {
		return fx.db.UpdateSample(tx, "alice", sid, map[string]any{"species": "X"})
	})
	_ = fx.s.Update(func(tx *store.Tx) error {
		return fx.db.Registry().Delete(tx, model.KindSample, sid, "bob")
	})
	_ = fx.s.View(func(tx *store.Tx) error {
		es, err := fx.log.ByObject(tx, model.KindSample, sid)
		if err != nil {
			t.Fatal(err)
		}
		if len(es) != 3 {
			t.Fatalf("entries = %+v", es)
		}
		if es[0].Topic != "sample.created" || es[1].Topic != "sample.updated" || es[2].Topic != "sample.deleted" {
			t.Errorf("topics = %v %v %v", es[0].Topic, es[1].Topic, es[2].Topic)
		}
		if es[2].Actor != "bob" {
			t.Errorf("delete actor = %q", es[2].Actor)
		}
		// Updated fields recorded.
		if len(es[1].Fields) != 1 || es[1].Fields[0] != "species" {
			t.Errorf("update fields = %v", es[1].Fields)
		}
		return nil
	})
}

func TestByActor(t *testing.T) {
	fx := newFixture(t)
	_ = fx.s.Update(func(tx *store.Tx) error {
		_, _ = fx.db.CreateSample(tx, "alice", model.Sample{Name: "a", Project: fx.project})
		_, _ = fx.db.CreateSample(tx, "bob", model.Sample{Name: "b", Project: fx.project})
		_, _ = fx.db.CreateSample(tx, "alice", model.Sample{Name: "c", Project: fx.project})
		return nil
	})
	_ = fx.s.View(func(tx *store.Tx) error {
		es, err := fx.log.ByActor(tx, "alice")
		if err != nil {
			t.Fatal(err)
		}
		if len(es) != 2 {
			t.Fatalf("alice entries = %+v", es)
		}
		if es[0].Seq >= es[1].Seq {
			t.Error("entries not in sequence order")
		}
		return nil
	})
}

func TestRecentNewestFirst(t *testing.T) {
	fx := newFixture(t)
	_ = fx.s.Update(func(tx *store.Tx) error {
		for i := 0; i < 5; i++ {
			_, _ = fx.db.CreateSample(tx, "alice", model.Sample{Name: "s", Project: fx.project})
		}
		return nil
	})
	_ = fx.s.View(func(tx *store.Tx) error {
		es, err := fx.log.Recent(tx, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(es) != 3 {
			t.Fatalf("recent = %+v", es)
		}
		if es[0].Seq < es[1].Seq || es[1].Seq < es[2].Seq {
			t.Errorf("not newest first: %v %v %v", es[0].Seq, es[1].Seq, es[2].Seq)
		}
		return nil
	})
}

func TestRollbackDiscardsAuditEntries(t *testing.T) {
	fx := newFixture(t)
	before := fx.log.Count()
	boom := errors.New("boom")
	err := fx.s.Update(func(tx *store.Tx) error {
		_, _ = fx.db.CreateSample(tx, "alice", model.Sample{Name: "phantom", Project: fx.project})
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if fx.log.Count() != before {
		t.Error("audit entry survived rollback")
	}
}

func TestTimestampsRecorded(t *testing.T) {
	fixed := time.Date(2010, 1, 15, 12, 0, 0, 0, time.UTC)
	old := nowFunc
	nowFunc = func() time.Time { return fixed }
	defer func() { nowFunc = old }()
	fx := newFixture(t)
	var sid int64
	_ = fx.s.Update(func(tx *store.Tx) error {
		sid, _ = fx.db.CreateSample(tx, "alice", model.Sample{Name: "s", Project: fx.project})
		return nil
	})
	_ = fx.s.View(func(tx *store.Tx) error {
		es, _ := fx.log.ByObject(tx, model.KindSample, sid)
		if len(es) != 1 || !es[0].At.Equal(fixed) {
			t.Errorf("entries = %+v", es)
		}
		return nil
	})
}

func TestAuditableFilter(t *testing.T) {
	for topic, want := range map[string]bool{
		"sample.created":      true,
		"sample.updated":      true,
		"sample.deleted":      true,
		"annotation.released": true,
		"annotation.merged":   true,
		"search.executed":     false,
		"heartbeat":           false,
	} {
		if got := auditable(topic); got != want {
			t.Errorf("auditable(%q) = %v", topic, got)
		}
	}
}
