// Golden equivalence tests for the declarative query engine: every call
// site refactored onto Tx.Query in model, tasks and audit is checked
// against the hand-rolled scan-and-filter it replaced, on a
// genload-populated store (the FGCZ deployment shape at reduced scale).
// The engine may pick any access path it likes; the results must be
// byte-for-byte what a full ordered scan plus Go-side filtering yields.
package repro_test

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/genload"
	"repro/internal/model"
	"repro/internal/store"
	"repro/internal/tasks"
)

// equivSystem generates the scaled FGCZ population with the audit trail
// enabled, so audit queries have real data to answer over.
func equivSystem(t *testing.T) *core.System {
	t.Helper()
	sys := core.MustNew(core.Options{DisableSearch: true})
	if err := genload.Generate(sys, genload.FGCZJan2010.Scaled(0.05)); err != nil {
		t.Fatal(err)
	}
	return sys
}

// scanRecords is the baseline access path: ordered full scan, Go-side
// filter.
func scanRecords(t *testing.T, tx *store.Tx, table string, keep func(store.Record) bool) []store.Record {
	t.Helper()
	var out []store.Record
	err := tx.ScanRef(table, func(r store.Record) bool {
		if keep(r) {
			out = append(out, r)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func recordIDs(rs []store.Record) []int64 {
	ids := make([]int64, len(rs))
	for i, r := range rs {
		ids[i] = r.ID()
	}
	return ids
}

func TestQueryEquivalenceModel(t *testing.T) {
	sys := equivSystem(t)
	db := sys.DB
	err := sys.View(func(tx *store.Tx) error {
		// UsersByRole: engine result == scan result, for every role.
		for _, role := range []string{model.RoleAdmin, model.RoleExpert, model.RoleScientist} {
			got, err := db.UsersByRole(tx, role)
			if err != nil {
				return err
			}
			want := scanRecords(t, tx, model.KindUser, func(r store.Record) bool {
				return r.String("role") == role
			})
			if len(got) != len(want) {
				t.Fatalf("UsersByRole(%s): %d users, scan found %d", role, len(got), len(want))
			}
			for i := range got {
				if got[i].ID != want[i].ID() || got[i].Login != want[i].String("login") {
					t.Fatalf("UsersByRole(%s)[%d] = %+v, want record %v", role, i, got[i], want[i])
				}
			}
			active, err := db.ActiveUsersByRole(tx, role)
			if err != nil {
				return err
			}
			wantActive := scanRecords(t, tx, model.KindUser, func(r store.Record) bool {
				return r.String("role") == role && r.Bool("active")
			})
			if !reflect.DeepEqual(recordIDs(wantActive), userIDs(active)) {
				t.Fatalf("ActiveUsersByRole(%s) ids diverge from scan", role)
			}
		}

		// SamplesOfProject / SamplesOfProjectBySpecies across all projects.
		projects := scanRecords(t, tx, model.KindProject, func(store.Record) bool { return true })
		for _, p := range projects {
			pid := p.ID()
			got, err := db.SamplesOfProject(tx, pid)
			if err != nil {
				return err
			}
			want := scanRecords(t, tx, model.KindSample, func(r store.Record) bool {
				return r.Int("project") == pid
			})
			if !reflect.DeepEqual(recordIDs(want), sampleIDs(got)) {
				t.Fatalf("SamplesOfProject(%d) ids diverge from scan", pid)
			}
			gotSp, err := db.SamplesOfProjectBySpecies(tx, pid, "Homo sapiens")
			if err != nil {
				return err
			}
			wantSp := scanRecords(t, tx, model.KindSample, func(r store.Record) bool {
				return r.Int("project") == pid && r.String("species") == "Homo sapiens"
			})
			if !reflect.DeepEqual(recordIDs(wantSp), sampleIDs(gotSp)) {
				t.Fatalf("SamplesOfProjectBySpecies(%d) ids diverge from scan", pid)
			}

			// ExtractsOfProject == scan of extracts joined through samples.
			gotEx, err := db.ExtractsOfProject(tx, pid)
			if err != nil {
				return err
			}
			inProject := map[int64]bool{}
			for _, s := range scanRecords(t, tx, model.KindSample, func(r store.Record) bool {
				return r.Int("project") == pid
			}) {
				inProject[s.ID()] = true
			}
			wantEx := scanRecords(t, tx, model.KindExtract, func(r store.Record) bool {
				return inProject[r.Int("sample")]
			})
			if !reflect.DeepEqual(recordIDs(wantEx), extractIDs(gotEx)) {
				t.Fatalf("ExtractsOfProject(%d) ids diverge from scan", pid)
			}

			// WorkunitsOfProject, all states and the ready slice.
			for _, state := range []string{"", model.WorkunitReady, model.WorkunitFailed} {
				gotWu, err := db.WorkunitsOfProject(tx, pid, state)
				if err != nil {
					return err
				}
				wantWu := scanRecords(t, tx, model.KindWorkunit, func(r store.Record) bool {
					return r.Int("project") == pid && (state == "" || r.String("state") == state)
				})
				if len(gotWu) != len(wantWu) {
					t.Fatalf("WorkunitsOfProject(%d, %q): %d vs scan %d", pid, state, len(gotWu), len(wantWu))
				}
				for i := range gotWu {
					if gotWu[i].ID != wantWu[i].ID() {
						t.Fatalf("WorkunitsOfProject(%d, %q)[%d] id mismatch", pid, state, i)
					}
				}
			}
		}

		// ExtractsOfSample and ResourcesOfWorkunit[ByFormat] over a spread
		// of parents.
		for sid := int64(1); sid <= 150; sid += 17 {
			got, err := db.ExtractsOfSample(tx, sid)
			if err != nil {
				return err
			}
			want := scanRecords(t, tx, model.KindExtract, func(r store.Record) bool {
				return r.Int("sample") == sid
			})
			if !reflect.DeepEqual(recordIDs(want), extractIDs(got)) {
				t.Fatalf("ExtractsOfSample(%d) ids diverge from scan", sid)
			}
		}
		for wid := int64(1); wid <= 1100; wid += 173 {
			got, err := db.ResourcesOfWorkunit(tx, wid)
			if err != nil {
				return err
			}
			want := scanRecords(t, tx, model.KindDataResource, func(r store.Record) bool {
				return r.Int("workunit") == wid
			})
			if !reflect.DeepEqual(recordIDs(want), resourceIDs(got)) {
				t.Fatalf("ResourcesOfWorkunit(%d) ids diverge from scan", wid)
			}
			gotCel, err := db.ResourcesOfWorkunitByFormat(tx, wid, "cel")
			if err != nil {
				return err
			}
			wantCel := scanRecords(t, tx, model.KindDataResource, func(r store.Record) bool {
				return r.Int("workunit") == wid && r.String("format") == "cel"
			})
			if !reflect.DeepEqual(recordIDs(wantCel), resourceIDs(gotCel)) {
				t.Fatalf("ResourcesOfWorkunitByFormat(%d) ids diverge from scan", wid)
			}
		}

		// The hot listing must actually be planned off an index at this
		// scale — the acceptance shape for the whole refactor.
		plan, err := tx.Explain(store.Query{
			Table: model.KindSample,
			Where: []store.Pred{store.Eq("project", int64(1)), store.Eq("species", "Homo sapiens")},
		})
		if err != nil {
			return err
		}
		if plan.Access != store.AccessIndex {
			t.Errorf("multi-predicate sample listing plans %s, want an index access path", plan)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func userIDs(us []model.User) []int64 {
	ids := make([]int64, len(us))
	for i, u := range us {
		ids[i] = u.ID
	}
	return ids
}

func sampleIDs(ss []model.Sample) []int64 {
	ids := make([]int64, len(ss))
	for i, s := range ss {
		ids[i] = s.ID
	}
	return ids
}

func extractIDs(es []model.Extract) []int64 {
	ids := make([]int64, len(es))
	for i, e := range es {
		ids[i] = e.ID
	}
	return ids
}

func resourceIDs(ds []model.DataResource) []int64 {
	ids := make([]int64, len(ds))
	for i, d := range ds {
		ids[i] = d.ID
	}
	return ids
}

func TestQueryEquivalenceTasks(t *testing.T) {
	sys := equivSystem(t)
	// Seed a mixed task population: role-assigned, login-assigned, open,
	// closed, across a few objects.
	err := sys.Update(func(tx *store.Tx) error {
		for i := 0; i < 40; i++ {
			task := tasks.Task{
				Type:  tasks.TypeAssignExtracts,
				Title: fmt.Sprintf("task %d", i),
				Kind:  model.KindWorkunit,
				Ref:   int64(i%5 + 1),
			}
			if i%3 == 0 {
				task.AssigneeRole = "expert"
			} else if i%3 == 1 {
				task.AssigneeLogin = "user0007"
			} else {
				task.AssigneeRole = "admin"
				task.AssigneeLogin = "user0007"
			}
			id, err := sys.Tasks.Create(tx, task)
			if err != nil {
				return err
			}
			if i%4 == 0 {
				if err := sys.Tasks.Complete(tx, "closer", id); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = sys.View(func(tx *store.Tx) error {
		got, err := sys.Tasks.ListOpen(tx, "user0007", "expert", "admin")
		if err != nil {
			return err
		}
		// Baseline: full scan, Go-side visibility filter, id order.
		want := scanRecords(t, tx, "task", func(r store.Record) bool {
			if r.String("state") != tasks.StateOpen {
				return false
			}
			role := r.String("assignee_role")
			return r.String("assignee_login") == "user0007" || role == "expert" || role == "admin"
		})
		if len(got) != len(want) {
			t.Fatalf("ListOpen: %d tasks, scan found %d", len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID() {
				t.Fatalf("ListOpen[%d] = id %d, scan %d", i, got[i].ID, want[i].ID())
			}
		}
		for ref := int64(1); ref <= 5; ref++ {
			gotObj, err := sys.Tasks.OpenForObject(tx, model.KindWorkunit, ref)
			if err != nil {
				return err
			}
			wantObj := scanRecords(t, tx, "task", func(r store.Record) bool {
				return r.String("state") == tasks.StateOpen &&
					r.String("kind") == model.KindWorkunit && r.Int("ref") == ref
			})
			if len(gotObj) != len(wantObj) {
				t.Fatalf("OpenForObject(%d): %d vs scan %d", ref, len(gotObj), len(wantObj))
			}
			for i := range gotObj {
				if gotObj[i].ID != wantObj[i].ID() {
					t.Fatalf("OpenForObject(%d)[%d] id mismatch", ref, i)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestQueryEquivalenceAudit(t *testing.T) {
	sys := equivSystem(t)
	log := sys.Audit
	// A second actor's worth of manipulations on top of genload's.
	err := sys.Update(func(tx *store.Tx) error {
		for i := 0; i < 10; i++ {
			if _, err := sys.DB.CreateSample(tx, "carol", model.Sample{
				Name: fmt.Sprintf("carol-%d", i), Project: 1,
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = sys.View(func(tx *store.Tx) error {
		for _, actor := range []string{"genload", "carol", "nobody"} {
			got, err := log.ByActor(tx, actor)
			if err != nil {
				return err
			}
			want := scanRecords(t, tx, "_audit", func(r store.Record) bool {
				return r.String("actor") == actor
			})
			if len(got) != len(want) {
				t.Fatalf("ByActor(%s): %d vs scan %d", actor, len(got), len(want))
			}
			for i := range got {
				if got[i].ID != want[i].ID() {
					t.Fatalf("ByActor(%s)[%d] id mismatch", actor, i)
				}
			}
		}

		// ByObject over a handful of refkeys.
		for ref := int64(1); ref <= 9; ref += 2 {
			got, err := log.ByObject(tx, model.KindSample, ref)
			if err != nil {
				return err
			}
			key := fmt.Sprintf("%s:%d", model.KindSample, ref)
			want := scanRecords(t, tx, "_audit", func(r store.Record) bool {
				return r.String("refkey") == key
			})
			if len(got) != len(want) {
				t.Fatalf("ByObject(sample, %d): %d vs scan %d", ref, len(got), len(want))
			}
		}

		// Recent(n) == scan + sort by seq + take last n, newest first.
		for _, n := range []int{5, 50, 1 << 20} {
			got, err := log.Recent(tx, n)
			if err != nil {
				return err
			}
			all := scanRecords(t, tx, "_audit", func(store.Record) bool { return true })
			want := all
			if len(want) > n {
				want = want[len(want)-n:]
			}
			if len(got) != len(want) {
				t.Fatalf("Recent(%d): %d vs scan %d", n, len(got), len(want))
			}
			for i := range got {
				if got[i].ID != want[len(want)-1-i].ID() {
					t.Fatalf("Recent(%d)[%d] = id %d, want %d", n, i, got[i].ID, want[len(want)-1-i].ID())
				}
			}
		}

		// Time-window queries: everything lies after the distant past and
		// nothing after the far future.
		past := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
		future := time.Now().UTC().Add(24 * time.Hour)
		all, err := log.ByTimeRange(tx, past, time.Time{})
		if err != nil {
			return err
		}
		if total := len(scanRecords(t, tx, "_audit", func(store.Record) bool { return true })); len(all) != total {
			t.Fatalf("ByTimeRange(past, ∞) = %d entries, want all %d", len(all), total)
		}
		none, err := log.ByActorSince(tx, "carol", future)
		if err != nil {
			return err
		}
		if len(none) != 0 {
			t.Fatalf("ByActorSince(future) = %d entries, want 0", len(none))
		}
		carol, err := log.ByActorSince(tx, "carol", past)
		if err != nil {
			return err
		}
		carolAll, err := log.ByActor(tx, "carol")
		if err != nil {
			return err
		}
		if len(carol) != len(carolAll) {
			t.Fatalf("ByActorSince(past) = %d, ByActor = %d", len(carol), len(carolAll))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
