// Ablation benchmarks for the design choices called out in DESIGN.md:
// secondary indexes vs full scans, transaction batch sizing for bulk loads
// (the overlay-scan effect), and the cost of each event subscriber on the
// write path.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/store"
)

// BenchmarkAblationIndexedLookup compares equality lookups through a
// secondary index against the unindexed fallback scan.
func BenchmarkAblationIndexedLookup(b *testing.B) {
	for _, rows := range []int{1000, 10000} {
		for _, indexed := range []bool{true, false} {
			b.Run(fmt.Sprintf("rows=%d/indexed=%v", rows, indexed), func(b *testing.B) {
				s := store.New()
				if err := s.CreateTable("t"); err != nil {
					b.Fatal(err)
				}
				if indexed {
					if err := s.CreateIndex("t", "grp", false); err != nil {
						b.Fatal(err)
					}
				}
				err := s.Update(func(tx *store.Tx) error {
					for i := 0; i < rows; i++ {
						if _, err := tx.Insert("t", store.Record{
							"grp": fmt.Sprintf("g%d", i%100),
						}); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					err := s.View(func(tx *store.Tx) error {
						ids, err := tx.Lookup("t", "grp", "g42")
						if err != nil {
							return err
						}
						if len(ids) != rows/100 {
							return fmt.Errorf("ids = %d", len(ids))
						}
						return nil
					})
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationTxBatchSize fences the linearity of bulk
// transactions: the overlay's per-index key maps keep unique checks and
// lookups O(1) per write, so samples/s must stay flat (or improve, as
// per-commit costs amortize) as the batch grows. Before the indexed
// overlay, per-insert cost grew with transaction size and batch=2000 ran
// 7x slower than batch=100.
func BenchmarkAblationTxBatchSize(b *testing.B) {
	const total = 2000
	for _, batch := range []int{100, 500, 2000} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys := core.MustNew(core.Options{DisableSearch: true, DisableAudit: true})
				var project int64
				err := sys.Update(func(tx *store.Tx) error {
					var err error
					project, err = sys.DB.CreateProject(tx, "x", model.Project{Name: "p"})
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
				for start := 0; start < total; start += batch {
					end := start + batch
					if end > total {
						end = total
					}
					err := sys.Update(func(tx *store.Tx) error {
						for j := start; j < end; j++ {
							if _, err := sys.DB.CreateSample(tx, "x", model.Sample{
								Name: fmt.Sprintf("s%d", j), Project: project,
							}); err != nil {
								return err
							}
						}
						return nil
					})
					if err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(total*b.N)/b.Elapsed().Seconds(), "samples/s")
		})
	}
}

// BenchmarkAblationEventSubscribers measures the incremental write-path
// cost of each event consumer: none, audit only, audit + search
// dirty-marking.
func BenchmarkAblationEventSubscribers(b *testing.B) {
	cases := []struct {
		name string
		opts core.Options
	}{
		{"none", core.Options{DisableSearch: true, DisableAudit: true}},
		{"audit", core.Options{DisableSearch: true}},
		{"audit+search", core.Options{}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			sys := core.MustNew(c.opts)
			var project int64
			err := sys.Update(func(tx *store.Tx) error {
				var err error
				project, err = sys.DB.CreateProject(tx, "x", model.Project{Name: "p"})
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := sys.Update(func(tx *store.Tx) error {
					_, err := sys.DB.CreateSample(tx, "x", model.Sample{
						Name: fmt.Sprintf("s%d", i), Project: project,
					})
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationLinkGraphMaintenance isolates the cost of bidirectional
// link bookkeeping by comparing entity creation with many references
// against creation with none.
func BenchmarkAblationLinkGraphMaintenance(b *testing.B) {
	for _, refs := range []int{0, 8, 32} {
		b.Run(fmt.Sprintf("refs=%d", refs), func(b *testing.B) {
			sys := core.MustNew(core.Options{DisableSearch: true, DisableAudit: true})
			var project int64
			var resources []int64
			err := sys.Update(func(tx *store.Tx) error {
				var err error
				project, err = sys.DB.CreateProject(tx, "x", model.Project{Name: "p"})
				if err != nil {
					return err
				}
				wu, err := sys.DB.CreateWorkunit(tx, "x", model.Workunit{Name: "w", Project: project})
				if err != nil {
					return err
				}
				for i := 0; i < refs; i++ {
					id, err := sys.DB.CreateDataResource(tx, "x", model.DataResource{
						Name: fmt.Sprintf("r%d", i), Workunit: wu,
					})
					if err != nil {
						return err
					}
					resources = append(resources, id)
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := sys.Update(func(tx *store.Tx) error {
					_, err := sys.DB.CreateExperiment(tx, "x", model.Experiment{
						Name: fmt.Sprintf("e%d", i), Project: project,
						Resources: resources,
					})
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
