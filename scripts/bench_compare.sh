#!/usr/bin/env bash
# Runs the benchmark suite into a temporary baseline and diffs it against
# the committed BENCH_baseline.json, flagging per-benchmark ns/op swings
# beyond a threshold. The committed baseline is never modified; refresh it
# with scripts/bench.sh once a change is accepted.
#
# Usage:
#   scripts/bench_compare.sh                    # full suite, 20% threshold
#   BENCH=BenchmarkD3 scripts/bench_compare.sh  # only matching benchmarks
#   THRESHOLD=10 BENCHTIME=1s scripts/bench_compare.sh
#
# Exit status: 0 when no benchmark regressed beyond the threshold,
# 1 otherwise (improvements and new/removed benchmarks are reported but
# do not fail the run).
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="${BASELINE:-BENCH_baseline.json}"
THRESHOLD="${THRESHOLD:-20}"
BENCH="${BENCH:-.}"
BENCHTIME="${BENCHTIME:-0.2s}"

if [[ ! -f "$BASELINE" ]]; then
    echo "bench_compare: no baseline at $BASELINE (run scripts/bench.sh first)" >&2
    exit 2
fi

CUR="$(mktemp)"
trap 'rm -f "$CUR"' EXIT

go test -bench="$BENCH" -benchmem -run='^$' -benchtime="$BENCHTIME" -timeout 60m ./... \
    | awk '/^Benchmark/ { print $1, $3 }' > "$CUR"

awk -v threshold="$THRESHOLD" -v curfile="$CUR" -v bench="$BENCH" '
# Pass 1: current run ("name ns_op" pairs).
BEGIN {
    while ((getline line < curfile) > 0) {
        split(line, f, " ")
        cur[f[1]] = f[2]
        order[n++] = f[1]
    }
    close(curfile)
}
# Pass 2: committed baseline JSON (one benchmark object per line).
/"name": "Benchmark/ {
    name = $0; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
    ns = $0
    if (ns !~ /"ns\/op": /) next
    sub(/.*"ns\/op": /, "", ns); sub(/[,}].*/, "", ns)
    base[name] = ns
}
END {
    worst = 0
    printf "%-70s %12s %12s %9s\n", "benchmark", "baseline", "current", "delta"
    for (i = 0; i < n; i++) {
        name = order[i]
        if (!(name in base)) {
            printf "%-70s %12s %12.1f %9s\n", name, "-", cur[name], "new"
            continue
        }
        delta = (cur[name] - base[name]) / base[name] * 100
        flag = ""
        if (delta > threshold) { flag = "  << REGRESSION"; worst = 1 }
        else if (delta < -threshold) { flag = "  (improved)" }
        printf "%-70s %12.1f %12.1f %+8.1f%%%s\n", name, base[name], cur[name], delta, flag
        delete base[name]
    }
    if (bench == ".") {
        # BenchmarkHTTPSocket entries come from make bench-http, not from
        # go test -bench — never report them as gone.
        for (name in base)
            if (name !~ /^BenchmarkHTTPSocket\//)
                printf "%-70s %12.1f %12s %9s\n", name, base[name], "-", "gone"
    }
    exit worst
}' "$BASELINE"
