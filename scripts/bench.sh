#!/usr/bin/env bash
# Runs the full benchmark suite with -benchmem and refreshes
# BENCH_baseline.json, the committed performance baseline that future PRs
# diff against.
#
# Usage:
#   scripts/bench.sh                 # default -benchtime (0.2s)
#   BENCHTIME=1s scripts/bench.sh    # longer, steadier numbers
#   OUT=/tmp/bench.json scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-0.2s}"
OUT="${OUT:-BENCH_baseline.json}"
RAW="$(mktemp)"
HTTP="$(mktemp)"
trap 'rm -f "$RAW" "$HTTP"' EXIT

# The socket-level BenchmarkHTTPSocket entries (including the
# replica-N/... rows from `make bench-http-replicas`) come from
# cmd/bfabric-loadbench, not from `go test -bench`; carry them over so a
# baseline refresh does not silently drop them.
if [ -f "$OUT" ]; then
    grep '"name": "BenchmarkHTTPSocket/' "$OUT" | sed 's/,[[:space:]]*$//' > "$HTTP" || true
fi

go test -bench=. -benchmem -run='^$' -benchtime="$BENCHTIME" -timeout 60m ./... | tee "$RAW"

awk -v benchtime="$BENCHTIME" \
    -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    -v goversion="$(go version | cut -d' ' -f3)" '
/^pkg: / { pkg = $2 }
/^cpu: / { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    iters = $2
    metrics = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        sep = (metrics == "" ? "" : ", ")
        metrics = metrics sprintf("%s\"%s\": %s", sep, $(i + 1), $i)
    }
    recs[n++] = sprintf("    {\"package\": \"%s\", \"name\": \"%s\", \"iterations\": %s, \"metrics\": {%s}}", \
                        pkg, name, iters, metrics)
}
END {
    printf "{\n"
    printf "  \"generated\": \"%s\",\n", date
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < n; i++) printf "%s%s\n", recs[i], (i < n - 1 ? "," : "")
    printf "  ]\n"
    printf "}\n"
}' "$RAW" > "$OUT"

if [ -s "$HTTP" ]; then
    TMP="$(mktemp)"
    awk -v httpfile="$HTTP" '
    { lines[NR] = $0 }
    END {
        close_i = 0
        for (i = 1; i <= NR; i++) if (lines[i] ~ /^  \]/) { close_i = i; break }
        m = 0
        while ((getline l < httpfile) > 0) http[m++] = l
        for (i = 1; i < close_i; i++) {
            if (i == close_i - 1 && m > 0 && lines[i] !~ /,$/) lines[i] = lines[i] ","
            print lines[i]
        }
        for (j = 0; j < m; j++) print http[j] (j < m - 1 ? "," : "")
        for (i = close_i; i <= NR; i++) print lines[i]
    }' "$OUT" > "$TMP" && mv "$TMP" "$OUT"
    echo "carried over $(wc -l < "$HTTP") BenchmarkHTTPSocket entries (refresh them with make bench-http)"
fi

echo "wrote $OUT"
