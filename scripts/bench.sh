#!/usr/bin/env bash
# Runs the full benchmark suite with -benchmem and refreshes
# BENCH_baseline.json, the committed performance baseline that future PRs
# diff against.
#
# Usage:
#   scripts/bench.sh                 # default -benchtime (0.2s)
#   BENCHTIME=1s scripts/bench.sh    # longer, steadier numbers
#   OUT=/tmp/bench.json scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-0.2s}"
OUT="${OUT:-BENCH_baseline.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -bench=. -benchmem -run='^$' -benchtime="$BENCHTIME" -timeout 60m ./... | tee "$RAW"

awk -v benchtime="$BENCHTIME" \
    -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    -v goversion="$(go version | cut -d' ' -f3)" '
/^pkg: / { pkg = $2 }
/^cpu: / { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    iters = $2
    metrics = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        sep = (metrics == "" ? "" : ", ")
        metrics = metrics sprintf("%s\"%s\": %s", sep, $(i + 1), $i)
    }
    recs[n++] = sprintf("    {\"package\": \"%s\", \"name\": \"%s\", \"iterations\": %s, \"metrics\": {%s}}", \
                        pkg, name, iters, metrics)
}
END {
    printf "{\n"
    printf "  \"generated\": \"%s\",\n", date
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < n; i++) printf "%s%s\n", recs[i], (i < n - 1 ? "," : "")
    printf "  ]\n"
    printf "}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT"
