// Package repro is a from-scratch Go reproduction of "B-Fabric: The Swiss
// Army Knife for Life Sciences" (Türker et al., EDBT 2010): an integrated
// system for managing experimental life-sciences data and annotations, and
// an extensible platform for coupling user applications on the fly.
//
// The implementation lives under internal/ (one package per subsystem; see
// DESIGN.md for the inventory and README.md for the tour), the binaries
// under cmd/, runnable walk-throughs under examples/, operator notes under
// docs/, and the paper-artifact benchmarks in bench_test.go next to this
// file. Storage is durable when a data directory is configured: commits
// are write-ahead logged with group commit and recovered on restart
// (DESIGN.md, "Durability"; docs/operations.md for running it).
package repro
