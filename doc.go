// Package repro is a from-scratch Go reproduction of "B-Fabric: The Swiss
// Army Knife for Life Sciences" (Türker et al., EDBT 2010): an integrated
// system for managing experimental life-sciences data and annotations, and
// an extensible platform for coupling user applications on the fly.
//
// The implementation lives under internal/ (one package per subsystem; see
// DESIGN.md for the inventory), the binaries under cmd/, runnable
// walk-throughs under examples/, and the paper-artifact benchmarks in
// bench_test.go next to this file.
package repro
